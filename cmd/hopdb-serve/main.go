// Command hopdb-serve is the long-lived query server: it opens a
// hop-doubling label index once through hopdb.Open — read into memory,
// zero-copy mmap'd (-mmap), served straight from the block-addressable
// disk format (-disk), or even proxied from another hopdb-serve
// (-remote) — and answers distance queries over the versioned /v1 HTTP
// API until shut down.
//
// Usage:
//
//	hopdb-serve -idx graph.idx [-addr :8080] [-cache 100000]
//	hopdb-serve -idx graph.idx -mmap -graph graph.txt   # enables /v1/path
//	hopdb-serve -disk graph.didx -disk-cache 4096       # labels stay on disk
//	hopdb-serve -remote http://other:8080               # proxy + cache tier
//	hopdb-serve -idx graph.idx -graph graph.txt -updates -admin-token secret
//	                                                    # accept edge updates
//	hopdb-serve -idx graph.idx -graph graph.txt -updates \
//	    -replica-of http://primary:8080 -replica-token secret
//	                                                    # pull replica: replays
//	                                                    # the primary's journal
//
// Endpoints (also reachable without the /v1 prefix, as legacy aliases;
// the admin surface exists only under /v1):
//
//	GET  /v1/distance?s=1&t=2  one pair
//	POST /v1/batch             JSON array of [s,t] pairs, or the compact
//	                           binary encoding (Content-Type negotiated)
//	GET  /v1/path?s=1&t=2      shortest path (needs -graph)
//	GET  /v1/healthz           liveness
//	GET  /v1/stats             backend kind, index size, uptime, QPS,
//	                           cache hit rate, update counters
//	POST /v1/admin/edges       online edge inserts/deletes (-updates,
//	                           gated by -admin-token)
//
// SIGINT/SIGTERM drain in-flight requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	hopdb "repro"
	"repro/internal/cluster"
	"repro/internal/server"
)

func main() {
	var (
		idxPath    = flag.String("idx", "", "index file built by hopdb-build (one of -idx/-disk/-remote)")
		diskPath   = flag.String("disk", "", "disk-query index file built by hopdb-build -disk")
		remoteURL  = flag.String("remote", "", "upstream hopdb-serve URL to proxy (adds a serving + cache tier)")
		useMmap    = flag.Bool("mmap", false, "memory-map the -idx file (v2 flat format) instead of reading it into memory")
		diskLabels = flag.Int("disk-cache", 0, "label lists kept in memory by the -disk backend (0 disables)")
		graphPath  = flag.String("graph", "", "original edge list; attaching it enables /v1/path and -bitparallel")
		directed   = flag.Bool("directed", false, "treat -graph edges as directed")
		weighted   = flag.Bool("weighted", false, "read -graph third column as weight")
		bitpar     = flag.Int("bitparallel", 0, "enable bit-parallel acceleration with this many roots (needs -graph; undirected unweighted only)")
		updates    = flag.Bool("updates", false, "accept online edge updates via POST /v1/admin/edges (needs -idx and -graph)")
		adminToken = flag.String("admin-token", "", "bearer token gating the admin API; empty disables /v1/admin/*")
		staleFrac  = flag.Float64("stale", 0, "dirty-vertex fraction beyond which a delete full-rebuilds the labels (default 0.25)")
		replicaOf  = flag.String("replica-of", "", "primary base URL to replicate from (needs -updates; rejects direct writes)")
		replicaTok = flag.String("replica-token", "", "primary's admin bearer token (the replication log is gated)")
		replicaInt = flag.Duration("replica-interval", 500*time.Millisecond, "idle replication poll cadence")
		replicaSeq = flag.Int64("replica-seq", 0, "journal sequence the -idx snapshot was saved at (the primary's updates.seq at save time); replication resumes from there")
		addr       = flag.String("addr", ":8080", "listen address")
		cache      = flag.Int("cache", 0, "distance cache budget in entries (0 disables)")
		workers    = flag.Int("workers", 0, "batch worker pool size (default GOMAXPROCS)")
		maxBatch   = flag.Int("max-batch", server.DefaultMaxBatch, "largest accepted batch request, in pairs")
		timeout    = flag.Duration("timeout", 10*time.Second, "per-request timeout (0 disables)")
		drain      = flag.Duration("drain", 15*time.Second, "graceful shutdown drain budget")
	)
	flag.Parse()
	sources := 0
	for _, s := range []string{*idxPath, *diskPath, *remoteURL} {
		if s != "" {
			sources++
		}
	}
	if sources != 1 {
		fmt.Fprintln(os.Stderr, "hopdb-serve: exactly one of -idx/-disk/-remote is required")
		flag.Usage()
		os.Exit(2)
	}

	// Assemble the hopdb.Open call the flags describe; every backend
	// comes back as the same Querier and the server serves it unchanged.
	path := *idxPath
	var opts []hopdb.OpenOption
	switch {
	case *diskPath != "":
		path = *diskPath
		opts = append(opts, hopdb.WithDisk(hopdb.DiskOptions{CacheLabels: *diskLabels}))
	case *remoteURL != "":
		opts = append(opts, hopdb.WithRemote(*remoteURL))
	default:
		if *useMmap {
			opts = append(opts, hopdb.WithMmap())
		}
	}
	if *graphPath != "" {
		if *idxPath == "" {
			fail(errors.New("-graph needs an in-memory index (-idx)"))
		}
		g, err := hopdb.LoadEdgeList(*graphPath, *directed, *weighted)
		if err != nil {
			fail(err)
		}
		opts = append(opts, hopdb.WithGraph(g))
	}
	if *bitpar > 0 {
		opts = append(opts, hopdb.WithBitParallel(*bitpar))
	}
	if *updates {
		// Open validates the combination (heap index + graph, no
		// mmap/disk/remote/bit-parallel) and reports a precise error.
		opts = append(opts, hopdb.WithUpdates(hopdb.UpdateOptions{
			MaxStaleFraction: *staleFrac,
			InitialSeq:       *replicaSeq,
		}))
	}
	if *replicaOf != "" && !*updates {
		fail(errors.New("-replica-of needs -updates (replication replays the journal through the maintenance engine)"))
	}

	start := time.Now()
	q, err := hopdb.Open(path, opts...)
	if err != nil {
		fail(err)
	}
	defer q.Close()
	st := q.Stats()
	log.Printf("opened %s backend in %v: %d vertices, %d entries (%d bytes)",
		st.Backend, time.Since(start).Round(time.Millisecond), st.Vertices, st.Entries, st.SizeBytes)
	if *graphPath != "" {
		log.Printf("attached graph %s: /v1/path enabled", *graphPath)
	}
	if st.BitParallel {
		log.Printf("bit-parallel acceleration enabled with %d roots", *bitpar)
	}
	if *updates {
		if *adminToken == "" {
			log.Printf("online updates enabled, but no -admin-token set: POST /v1/admin/edges will answer 403")
		} else {
			log.Printf("online updates enabled: POST /v1/admin/edges (bearer-token gated)")
		}
	}

	srv := server.New(q, server.Config{
		CacheEntries: *cache,
		MaxBatch:     *maxBatch,
		Workers:      *workers,
		Timeout:      *timeout,
		AdminToken:   *adminToken,
		Replica:      *replicaOf != "",
	})

	// Replica mode: replay the primary's mutation journal in the
	// background. Replication halting (journal gap, divergence) is fatal
	// — continuing to serve would silently return stale answers forever.
	pullCtx, pullCancel := context.WithCancel(context.Background())
	defer pullCancel()
	if *replicaOf != "" {
		rep, ok := q.(hopdb.Replicator)
		if !ok {
			fail(errors.New("backend does not journal mutations; replication needs -updates"))
		}
		primary := strings.TrimRight(*replicaOf, "/")
		go func() {
			if err := cluster.Pull(pullCtx, rep, cluster.PullConfig{
				Primary:  primary,
				Token:    *replicaTok,
				Interval: *replicaInt,
				Logf:     log.Printf,
			}); err != nil {
				log.Printf("hopdb-serve: replication halted: %v", err)
				os.Exit(1)
			}
		}()
		log.Printf("replica mode: pulling %s every %v (direct writes rejected)", primary, *replicaInt)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	log.Printf("serving on http://%s (cache=%d entries, max-batch=%d, timeout=%v)",
		ln.Addr(), *cache, *maxBatch, *timeout)

	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		if !errors.Is(err, http.ErrServerClosed) {
			fail(err)
		}
	case s := <-sig:
		log.Printf("received %v, draining (budget %v)", s, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("drain incomplete: %v", err)
		}
		<-done
	}
	fin := srv.Stats()
	log.Printf("served %d queries over %.1fs (%.0f qps)", fin.Queries, fin.UptimeSeconds, fin.QPS)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hopdb-serve:", err)
	os.Exit(1)
}
