// Command hopdb-serve is the long-lived query server: it opens a
// hop-doubling label index once through hopdb.Open — read into memory,
// zero-copy mmap'd (-mmap), served straight from the block-addressable
// disk format (-disk), or even proxied from another hopdb-serve
// (-remote) — and answers distance queries over the versioned /v1 HTTP
// API until shut down.
//
// Usage:
//
//	hopdb-serve -idx graph.idx [-addr :8080] [-cache 100000]
//	hopdb-serve -idx graph.idx -mmap -graph graph.txt   # enables /v1/path
//	hopdb-serve -disk graph.didx -disk-cache 4096       # labels stay on disk
//	hopdb-serve -remote http://other:8080               # proxy + cache tier
//	hopdb-serve -shard shards/leaf0.sidx -shard-map shards/shard.json
//	                                                    # one rank shard of a
//	                                                    # hopdb-build -shards
//	                                                    # fleet (front with
//	                                                    # hopdb-router)
//	hopdb-serve -idx graph.idx -graph graph.txt -updates -admin-token secret
//	                                                    # accept edge updates
//	hopdb-serve -idx graph.idx -graph graph.txt -updates \
//	    -replica-of http://primary:8080 -replica-token secret
//	                                                    # pull replica: replays
//	                                                    # the primary's journal
//	hopdb-serve -dataset wiki=wiki.idx -dataset road=road.didx,disk \
//	    -token-file tokens.json                         # multi-tenant: named
//	                                                    # datasets + principals
//
// One process serves any number of named datasets: -idx/-disk/-remote is
// the dataset named "default", each -dataset adds another, and more can
// be attached or detached at runtime through POST/DELETE
// /v1/admin/datasets/{name} without blocking readers.
//
// Endpoints (flat /v1/* routes — also reachable without the prefix, as
// legacy aliases — serve the "default" dataset; every query route also
// exists dataset-scoped as /v1/{dataset}/...):
//
//	GET  /v1/distance?s=1&t=2  one pair
//	POST /v1/batch             JSON array of [s,t] pairs, or the compact
//	                           binary encoding (Content-Type negotiated)
//	GET  /v1/path?s=1&t=2      shortest path (needs -graph)
//	GET  /v1/healthz           liveness
//	GET  /v1/stats             backend kind, index size, uptime, QPS,
//	                           cache hit rate, update counters, datasets
//	GET  /v1/metrics           Prometheus text exposition, per-dataset
//	POST /v1/admin/edges       online edge inserts/deletes (-updates,
//	                           gated by -admin-token or a write-scoped
//	                           principal from -token-file)
//	POST /v1/admin/datasets/{name}    attach a dataset (admin scope)
//	DELETE /v1/admin/datasets/{name}  detach it; readers drain first
//	GET  /v1/admin/accesslog   ring buffer of recent requests
//
// SIGINT/SIGTERM drain in-flight requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	hopdb "repro"
	"repro/internal/cluster"
	"repro/internal/registry"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/wire"
)

func main() {
	var (
		idxPath    = flag.String("idx", "", "index file built by hopdb-build (one of -idx/-disk/-remote/-shard)")
		diskPath   = flag.String("disk", "", "disk-query index file built by hopdb-build -disk")
		remoteURL  = flag.String("remote", "", "upstream hopdb-serve URL to proxy (adds a serving + cache tier)")
		shardPath  = flag.String("shard", "", "rank-shard file written by hopdb-build -shards; serves only its rank range (pair with hopdb-router -shard-map)")
		shardMapP  = flag.String("shard-map", "", "shard.json to validate -shard against (optional but recommended)")
		useMmap    = flag.Bool("mmap", false, "memory-map the -idx file (v2 flat format) instead of reading it into memory")
		diskLabels = flag.Int("disk-cache", 0, "label lists kept in memory by the -disk backend (0 disables)")
		graphPath  = flag.String("graph", "", "original edge list; attaching it enables /v1/path and -bitparallel")
		directed   = flag.Bool("directed", false, "treat -graph edges as directed")
		weighted   = flag.Bool("weighted", false, "read -graph third column as weight")
		bitpar     = flag.Int("bitparallel", 0, "enable bit-parallel acceleration with this many roots (needs -graph; undirected unweighted only)")
		updates    = flag.Bool("updates", false, "accept online edge updates via POST /v1/admin/edges (needs -idx and -graph)")
		adminToken = flag.String("admin-token", "", "bearer token gating the admin API; empty disables /v1/admin/*")
		staleFrac  = flag.Float64("stale", 0, "dirty-vertex fraction beyond which a delete full-rebuilds the labels (default 0.25)")
		replicaOf  = flag.String("replica-of", "", "primary base URL to replicate from (needs -updates; rejects direct writes)")
		replicaTok = flag.String("replica-token", "", "primary's admin bearer token (the replication log is gated)")
		replicaInt = flag.Duration("replica-interval", 500*time.Millisecond, "idle replication poll cadence")
		replicaSeq = flag.Int64("replica-seq", 0, "journal sequence the -idx snapshot was saved at (the primary's updates.seq at save time); replication resumes from there")
		replicaDS  = flag.String("replica-dataset", "", "primary-side dataset whose journal is replayed (default: the default dataset)")
		addr       = flag.String("addr", ":8080", "listen address")
		cache      = flag.Int("cache", 0, "distance cache budget in entries, per dataset (0 disables)")
		workers    = flag.Int("workers", 0, "batch worker pool size (default GOMAXPROCS)")
		maxBatch   = flag.Int("max-batch", server.DefaultMaxBatch, "largest accepted batch request, in pairs")
		timeout    = flag.Duration("timeout", 10*time.Second, "per-request timeout on query routes (0 disables)")
		adminTmo   = flag.Duration("admin-timeout", 0, "per-request timeout on admin routes (0 disables; label rebuilds outlive query budgets)")
		tokenFile  = flag.String("token-file", "", "JSON file of principals (bearer tokens with scopes and per-dataset grants); enables principal auth")
		rateQPS    = flag.Float64("rate", 0, "default per-principal rate limit in answered pairs per second (0 disables)")
		rateBurst  = flag.Float64("burst", 0, "rate-limit token-bucket depth (default: the -rate value)")
		maxInfl    = flag.Int("max-inflight", 0, "batch pairs admitted concurrently across all requests; overflow sheds with 429 (0 disables)")
		accessN    = flag.Int("accesslog", 0, "access-log ring capacity in entries (0 selects 1024)")
		pprofOn    = flag.Bool("pprof", false, "mount /debug/pprof (admin-scope gated when auth is configured)")
		drain      = flag.Duration("drain", 15*time.Second, "graceful shutdown drain budget")
	)
	type namedSpec struct {
		name string
		spec wire.DatasetSpec
	}
	var extra []namedSpec
	flag.Func("dataset",
		"serve a named dataset: name=path[,mmap][,disk][,updates][,directed][,weighted][,graph=FILE][,disk-cache=N][,bitparallel=N][,stale=F]; repeatable; an http(s):// path proxies a remote server",
		func(v string) error {
			name, spec, err := server.ParseDatasetFlag(v)
			if err != nil {
				return err
			}
			extra = append(extra, namedSpec{name, spec})
			return nil
		})
	flag.Parse()
	sources := 0
	for _, s := range []string{*idxPath, *diskPath, *remoteURL, *shardPath} {
		if s != "" {
			sources++
		}
	}
	if sources > 1 || (sources == 0 && len(extra) == 0) {
		fmt.Fprintln(os.Stderr, "hopdb-serve: exactly one of -idx/-disk/-remote/-shard (the default dataset), or at least one -dataset, is required")
		flag.Usage()
		os.Exit(2)
	}
	if *shardPath != "" && (*useMmap || *graphPath != "" || *bitpar > 0 || *updates) {
		fail(errors.New("-shard serves a static rank slice; drop -mmap/-graph/-bitparallel/-updates"))
	}
	if *shardMapP != "" && *shardPath == "" {
		fail(errors.New("-shard-map needs -shard"))
	}

	// Assemble the hopdb.Open call the flags describe; every backend
	// comes back as the same Querier and the server serves it unchanged.
	path := *idxPath
	var opts []hopdb.OpenOption
	switch {
	case *diskPath != "":
		path = *diskPath
		opts = append(opts, hopdb.WithDisk(hopdb.DiskOptions{CacheLabels: *diskLabels}))
	case *remoteURL != "":
		opts = append(opts, hopdb.WithRemote(*remoteURL))
	default:
		if *useMmap {
			opts = append(opts, hopdb.WithMmap())
		}
	}
	if *graphPath != "" {
		if *idxPath == "" {
			fail(errors.New("-graph needs an in-memory index (-idx)"))
		}
		g, err := hopdb.LoadEdgeList(*graphPath, *directed, *weighted)
		if err != nil {
			fail(err)
		}
		opts = append(opts, hopdb.WithGraph(g))
	}
	if *bitpar > 0 {
		opts = append(opts, hopdb.WithBitParallel(*bitpar))
	}
	if *updates {
		// Open validates the combination (heap index + graph, no
		// mmap/disk/remote/bit-parallel) and reports a precise error.
		opts = append(opts, hopdb.WithUpdates(hopdb.UpdateOptions{
			MaxStaleFraction: *staleFrac,
			InitialSeq:       *replicaSeq,
		}))
	}
	if *replicaOf != "" && !*updates {
		fail(errors.New("-replica-of needs -updates (replication replays the journal through the maintenance engine)"))
	}

	var q hopdb.Querier // the default dataset's backend, when one is given
	if sources == 1 {
		start := time.Now()
		var err error
		if *shardPath != "" {
			q, err = hopdb.OpenShard(*shardPath)
			if err == nil && *shardMapP != "" {
				err = checkShardMap(q, *shardMapP)
			}
		} else {
			q, err = hopdb.Open(path, opts...)
		}
		if err != nil {
			fail(err)
		}
		defer q.Close()
		st := q.Stats()
		if st.Shard != nil {
			log.Printf("shard ranks [%d,%d) of %d vertices (hub=%v)", st.Shard.Lo, st.Shard.Hi, st.Vertices, st.Shard.Hub)
		}
		log.Printf("opened %s backend in %v: %d vertices, %d entries (%d bytes)",
			st.Backend, time.Since(start).Round(time.Millisecond), st.Vertices, st.Entries, st.SizeBytes)
		if *graphPath != "" {
			log.Printf("attached graph %s: /v1/path enabled", *graphPath)
		}
		if st.BitParallel {
			log.Printf("bit-parallel acceleration enabled with %d roots", *bitpar)
		}
	}
	if *updates {
		if *adminToken == "" && *tokenFile == "" {
			log.Printf("online updates enabled, but no -admin-token or -token-file set: POST /v1/admin/edges will answer 403")
		} else {
			log.Printf("online updates enabled: POST /v1/admin/edges (bearer-token gated)")
		}
	}

	var principals []server.Principal
	if *tokenFile != "" {
		var err error
		principals, err = server.LoadTokenFile(*tokenFile)
		if err != nil {
			fail(err)
		}
		log.Printf("loaded %d principals from %s", len(principals), *tokenFile)
	}

	// Assemble the dataset registry: the -idx/-disk/-remote backend is
	// the "default" dataset; each -dataset adds a named one.
	reg := registry.New()
	if q != nil {
		if _, err := reg.Attach(wire.DefaultDataset, q, false); err != nil {
			fail(err)
		}
	}
	for _, d := range extra {
		start := time.Now()
		dq, err := server.OpenSpec(d.spec)
		if err != nil {
			fail(fmt.Errorf("dataset %s: %w", d.name, err))
		}
		if _, err := reg.Attach(d.name, dq, true); err != nil {
			dq.Close()
			fail(err)
		}
		st := dq.Stats()
		log.Printf("dataset %q: opened %s backend in %v: %d vertices, %d entries",
			d.name, st.Backend, time.Since(start).Round(time.Millisecond), st.Vertices, st.Entries)
	}

	srv := server.NewRegistry(reg, server.Config{
		CacheEntries:     *cache,
		MaxBatch:         *maxBatch,
		Workers:          *workers,
		Timeout:          *timeout,
		AdminTimeout:     *adminTmo,
		AdminToken:       *adminToken,
		Principals:       principals,
		RateQPS:          *rateQPS,
		RateBurst:        *rateBurst,
		MaxInflightPairs: *maxInfl,
		AccessLogSize:    *accessN,
		EnablePprof:      *pprofOn,
		Replica:          *replicaOf != "",
	})

	// Replica mode: replay the primary's mutation journal in the
	// background. Replication halting (journal gap, divergence) is fatal
	// — continuing to serve would silently return stale answers forever.
	pullCtx, pullCancel := context.WithCancel(context.Background())
	defer pullCancel()
	if *replicaOf != "" {
		rep, ok := q.(hopdb.Replicator)
		if !ok {
			fail(errors.New("backend does not journal mutations; replication needs -idx with -updates"))
		}
		primary := strings.TrimRight(*replicaOf, "/")
		go func() {
			if err := cluster.Pull(pullCtx, rep, cluster.PullConfig{
				Primary:  primary,
				Token:    *replicaTok,
				Dataset:  *replicaDS,
				Interval: *replicaInt,
				Logf:     log.Printf,
			}); err != nil {
				log.Printf("hopdb-serve: replication halted: %v", err)
				os.Exit(1)
			}
		}()
		log.Printf("replica mode: pulling %s every %v (direct writes rejected)", primary, *replicaInt)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	log.Printf("serving datasets %v on http://%s (cache=%d entries, max-batch=%d, timeout=%v)",
		reg.Names(), ln.Addr(), *cache, *maxBatch, *timeout)

	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		if !errors.Is(err, http.ErrServerClosed) {
			fail(err)
		}
	case s := <-sig:
		log.Printf("received %v, draining (budget %v)", s, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("drain incomplete: %v", err)
		}
		<-done
	}
	fin := srv.Stats()
	log.Printf("served %d queries over %.1fs (%.0f qps)", fin.Queries, fin.UptimeSeconds, fin.QPS)
}

// checkShardMap cross-checks an opened shard backend against a
// shard.json: the advertised rank range must be the map's hub tier or
// one of its leaves, over the same vertex count — catching a stale or
// mismatched shard file before the router ever routes to it.
func checkShardMap(q hopdb.Querier, mapPath string) error {
	m, err := shard.LoadMap(mapPath)
	if err != nil {
		return err
	}
	st := q.Stats()
	si := st.Shard
	if st.Vertices != m.N {
		return fmt.Errorf("shard has %d vertices but %s describes %d", st.Vertices, mapPath, m.N)
	}
	if si.Hub {
		if si.Lo != 0 || si.Hi != m.HubRanks {
			return fmt.Errorf("hub shard covers [%d,%d) but %s's hub tier is [0,%d)", si.Lo, si.Hi, mapPath, m.HubRanks)
		}
		return nil
	}
	for _, sh := range m.Shards {
		if sh.Lo == si.Lo && sh.Hi == si.Hi {
			return nil
		}
	}
	return fmt.Errorf("shard covers ranks [%d,%d), which is no leaf of %s (stale shard map?)", si.Lo, si.Hi, mapPath)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hopdb-serve:", err)
	os.Exit(1)
}
