// Command hopdb-vet runs the repository's invariant analyzers (see
// internal/analysis) over Go packages:
//
//	hopdb-vet [-tags taglist] [-list] [packages]
//
// With no package patterns it checks ./... from the current directory.
// Findings print one per line as file:line:col: analyzer: message; the
// exit status is 0 when clean, 1 when there are findings, and 2 when
// loading or analysis itself failed. Run it twice in CI — once with no
// tags and once with -tags hopdb_unsafe — so both build configurations
// stay clean. Suppress a deliberate exception with
//
//	//hopdb:ignore <analyzer> <reason>
//
// on the offending line or alone on the line above it; the reason is
// mandatory.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	tags := flag.String("tags", "", "comma-separated build tags (e.g. hopdb_unsafe)")
	list := flag.Bool("list", false, "print the analyzer catalog and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: hopdb-vet [-tags taglist] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All {
			fmt.Printf("%s\n    %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var tagList []string
	if *tags != "" {
		tagList = strings.Split(*tags, ",")
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hopdb-vet:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(wd, tagList, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hopdb-vet:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, analysis.All)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hopdb-vet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
