// Command hopdb-gen generates synthetic graphs in the text edge-list
// format: the GLP scale-free model the paper uses for its synthetic
// study, Barabasi-Albert, a directed power-law model, Erdos-Renyi, and
// small deterministic families.
//
// Usage:
//
//	hopdb-gen -model glp -n 100000 -density 10 -seed 1 -o graph.txt
//	hopdb-gen -model powerlaw -n 50000 -density 5 -alpha 2.2 -o web.txt
//	hopdb-gen -model grid -rows 100 -cols 100 -maxw 10 -o road.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	var (
		model   = flag.String("model", "glp", "generator: glp | ba | powerlaw | er | star | grid")
		n       = flag.Int("n", 10000, "number of vertices")
		density = flag.Float64("density", 5, "target |E|/|V| (glp, powerlaw, er)")
		alpha   = flag.Float64("alpha", 2.2, "power-law exponent (powerlaw)")
		m       = flag.Int("m", 3, "edges per vertex (ba)")
		rows    = flag.Int("rows", 100, "grid rows (grid)")
		cols    = flag.Int("cols", 100, "grid cols (grid)")
		maxw    = flag.Int("maxw", 1, "maximum random edge weight (grid, or any model with -weighted)")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("o", "", "output file (default stdout)")
		weight  = flag.Bool("weighted", false, "attach uniform random weights in [1,maxw]")
	)
	flag.Parse()

	g, err := build(*model, int32(*n), *density, *alpha, int32(*m), int32(*rows), int32(*cols), int32(*maxw), *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hopdb-gen:", err)
		os.Exit(1)
	}
	if *weight && !g.Weighted() {
		g, err = gen.WithRandomWeights(g, int32(*maxw), *seed+7)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hopdb-gen:", err)
			os.Exit(1)
		}
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hopdb-gen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := graph.WriteEdgeList(w, g); err != nil {
		fmt.Fprintln(os.Stderr, "hopdb-gen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "generated %v\n", g)
}

func build(model string, n int32, density, alpha float64, m, rows, cols, maxw int32, seed int64) (*graph.Graph, error) {
	switch model {
	case "glp":
		return gen.GLP(gen.DefaultGLP(n, density, seed))
	case "ba":
		return gen.BA(gen.BAParams{N: n, M: m, Seed: seed})
	case "powerlaw":
		return gen.PowerLaw(gen.PowerLawParams{N: n, Density: density, Alpha: alpha, Directed: true, Seed: seed})
	case "er":
		return gen.ER(n, int(float64(n)*density), false, seed)
	case "star":
		return gen.Star(n)
	case "grid":
		return gen.GridRoad(rows, cols, maxw, seed)
	default:
		return nil, fmt.Errorf("unknown model %q", model)
	}
}
