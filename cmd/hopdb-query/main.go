// Command hopdb-query answers point-to-point distance queries against an
// index built by hopdb-build. Queries are "s t" pairs, one per line, from
// -q or stdin. With -disk it queries the block-addressable format
// directly from disk and reports I/O counts.
//
// Usage:
//
//	echo "3 17" | hopdb-query -idx graph.idx
//	hopdb-query -disk graph.didx -q queries.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	hopdb "repro"
)

func main() {
	var (
		idxPath  = flag.String("idx", "", "loadable index file")
		diskPath = flag.String("disk", "", "disk-query index file")
		qPath    = flag.String("q", "", "query file (default stdin)")
		cache    = flag.Int("cache", 0, "disk label cache entries")
		useMmap  = flag.Bool("mmap", false, "memory-map the -idx file (v2 flat format) instead of reading it into memory")
	)
	flag.Parse()
	if (*idxPath == "") == (*diskPath == "") {
		fmt.Fprintln(os.Stderr, "hopdb-query: exactly one of -idx/-disk is required")
		os.Exit(2)
	}
	if *useMmap && *idxPath == "" {
		fmt.Fprintln(os.Stderr, "hopdb-query: -mmap requires -idx")
		os.Exit(2)
	}
	var query func(s, t int32) (uint32, error)
	var diskIdx *hopdb.DiskIndex
	if *idxPath != "" {
		var (
			idx *hopdb.Index
			err error
		)
		if *useMmap {
			idx, err = hopdb.LoadIndexFlat(*idxPath)
		} else {
			idx, err = hopdb.LoadIndex(*idxPath)
		}
		if err != nil {
			fail(err)
		}
		defer idx.Close()
		query = func(s, t int32) (uint32, error) {
			d, _ := idx.Distance(s, t)
			return d, nil
		}
	} else {
		var err error
		diskIdx, err = hopdb.OpenDiskIndex(*diskPath, hopdb.DiskOptions{CacheLabels: *cache})
		if err != nil {
			fail(err)
		}
		defer diskIdx.Close()
		query = diskIdx.Distance
	}

	var in io.Reader = os.Stdin
	if *qPath != "" {
		f, err := os.Open(*qPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
	}
	sc := bufio.NewScanner(in)
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	count := 0
	start := time.Now()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			fmt.Fprintf(os.Stderr, "skipping malformed line %q\n", line)
			continue
		}
		s, err1 := strconv.ParseInt(fields[0], 10, 32)
		t, err2 := strconv.ParseInt(fields[1], 10, 32)
		if err1 != nil || err2 != nil {
			fmt.Fprintf(os.Stderr, "skipping malformed line %q\n", line)
			continue
		}
		d, err := query(int32(s), int32(t))
		if err != nil {
			fail(err)
		}
		if d == hopdb.Infinity {
			fmt.Fprintf(w, "%d %d unreachable\n", s, t)
		} else {
			fmt.Fprintf(w, "%d %d %d\n", s, t, d)
		}
		count++
	}
	if err := sc.Err(); err != nil {
		fail(err)
	}
	elapsed := time.Since(start)
	if count > 0 {
		fmt.Fprintf(os.Stderr, "%d queries in %v (%.2f us/query)\n", count, elapsed, elapsed.Seconds()/float64(count)*1e6)
	}
	if diskIdx != nil {
		fmt.Fprintf(os.Stderr, "disk I/O: %d block reads (%.2f per query)\n", diskIdx.IOs(), float64(diskIdx.IOs())/float64(count))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hopdb-query:", err)
	os.Exit(1)
}
