// Command hopdb-query answers point-to-point distance queries against an
// index built by hopdb-build, through the backend-agnostic hopdb.Open
// entry point. Queries are "s t" pairs, one per line, read from -q (the
// conventional "-" means stdin, as does omitting -q). With -disk it
// queries the block-addressable format directly from disk and reports
// I/O counts; with -mmap it memory-maps the index.
//
// Usage:
//
//	echo "3 17" | hopdb-query -idx graph.idx
//	hopdb-query -idx graph.idx -mmap -q queries.txt
//	hopdb-query -disk graph.didx -q -     # explicit stdin
//
// Exit status:
//
//	0  every query answered and reachable
//	1  at least one pair was unreachable
//	2  usage error (bad flags)
//	3  bad input (malformed query lines) or a runtime failure
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	hopdb "repro"
)

// Exit codes; "unreachable" and "bad input" are deliberately distinct so
// scripts can tell an empty answer from a broken pipeline.
const (
	exitOK          = 0
	exitUnreachable = 1
	exitUsage       = 2
	exitBadInput    = 3
)

func main() {
	var (
		idxPath  = flag.String("idx", "", "loadable index file")
		diskPath = flag.String("disk", "", "disk-query index file")
		qPath    = flag.String("q", "-", `query file ("-" or empty = stdin)`)
		cache    = flag.Int("cache", 0, "disk label cache entries")
		useMmap  = flag.Bool("mmap", false, "memory-map the -idx file (v2 flat format) instead of reading it into memory")
	)
	flag.Parse()
	if (*idxPath == "") == (*diskPath == "") {
		fmt.Fprintln(os.Stderr, "hopdb-query: exactly one of -idx/-disk is required")
		os.Exit(exitUsage)
	}
	if *useMmap && *idxPath == "" {
		fmt.Fprintln(os.Stderr, "hopdb-query: -mmap requires -idx")
		os.Exit(exitUsage)
	}

	path := *idxPath
	var opts []hopdb.OpenOption
	if *diskPath != "" {
		path = *diskPath
		opts = append(opts, hopdb.WithDisk(hopdb.DiskOptions{CacheLabels: *cache}))
	} else if *useMmap {
		opts = append(opts, hopdb.WithMmap())
	}
	q, err := hopdb.Open(path, opts...)
	if err != nil {
		fail(err)
	}
	defer q.Close()
	// Fallible backends (disk) report real failures through Lookup;
	// those must abort with exit 3, not print "unreachable".
	lookup := func(s, t int32) (uint32, bool, error) {
		d, ok := q.Distance(s, t)
		return d, ok, nil
	}
	if lq, ok := q.(hopdb.Lookuper); ok {
		lookup = lq.Lookup
	}

	var in io.Reader = os.Stdin
	if *qPath != "" && *qPath != "-" {
		f, err := os.Open(*qPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
	}
	sc := bufio.NewScanner(in)
	w := bufio.NewWriter(os.Stdout)
	count := 0
	badInput := false
	unreachable := false
	start := time.Now()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' {
			continue
		}
		fields := strings.Fields(line)
		var (
			s, t int64
			err1 error
			err2 error
		)
		if len(fields) >= 2 {
			s, err1 = strconv.ParseInt(fields[0], 10, 32)
			t, err2 = strconv.ParseInt(fields[1], 10, 32)
		}
		if len(fields) < 2 || err1 != nil || err2 != nil {
			fmt.Fprintf(os.Stderr, "skipping malformed line %q\n", line)
			badInput = true
			continue
		}
		d, ok, err := lookup(int32(s), int32(t))
		if err != nil {
			w.Flush()
			fail(err)
		}
		if !ok {
			unreachable = true
			fmt.Fprintf(w, "%d %d unreachable\n", s, t)
		} else {
			fmt.Fprintf(w, "%d %d %d\n", s, t, d)
		}
		count++
	}
	scanErr := sc.Err()
	w.Flush()
	if scanErr != nil {
		fail(scanErr)
	}
	elapsed := time.Since(start)
	if count > 0 {
		st := q.Stats()
		kernel := string(st.Kernel)
		if kernel == "" {
			kernel = string(hopdb.KernelScalar)
		}
		fmt.Fprintf(os.Stderr, "%d queries in %v (%.2f us/query) backend=%s kernel=%s\n",
			count, elapsed, elapsed.Seconds()/float64(count)*1e6, st.Backend, kernel)
	}
	if d := hopdb.Disk(q); d != nil && count > 0 {
		fmt.Fprintf(os.Stderr, "disk I/O: %d block reads (%.2f per query)\n", d.IOs(), float64(d.IOs())/float64(count))
	}
	switch {
	case badInput:
		os.Exit(exitBadInput)
	case unreachable:
		os.Exit(exitUnreachable)
	}
	os.Exit(exitOK)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hopdb-query:", err)
	os.Exit(exitBadInput)
}
