// Command hopdb-bench regenerates the paper's evaluation: every table and
// figure of Section 8 over the synthetic proxy datasets (see DESIGN.md §5
// for the substitution rationale). It also carries the serving-path
// tooling: a load generator for hopdb-serve and a converter that turns
// `go test -bench` output into the BENCH_PR.json artifact CI archives.
//
// Usage:
//
//	hopdb-bench all                # everything, paper order
//	hopdb-bench table6 [-scale 1] [-queries 500]
//	hopdb-bench table7
//	hopdb-bench table8
//	hopdb-bench fig8
//	hopdb-bench fig9
//	hopdb-bench fig10
//	hopdb-bench -datasets enron,syn6 table6
//	hopdb-bench -url http://127.0.0.1:8080 -requests 10000 -conc 16 serve
//	hopdb-bench -url http://127.0.0.1:8080 -batch 64 -binary serve
//	hopdb-bench -url http://127.0.0.1:8090 -hedge serve   # router hedging A/B
//	go test -bench 'Distance|LoadIndex|BuildRanked|ShardedBatch' -benchtime 1x -run '^$' | hopdb-bench benchjson
//	hopdb-bench -base BENCH_BASE.json -new BENCH_PR.json benchcmp
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strings"

	"repro/internal/bench"
	"repro/internal/benchfmt"
)

func main() {
	var (
		scale    = flag.Float64("scale", 1, "dataset size multiplier")
		queries  = flag.Int("queries", 500, "queries per dataset (table6)")
		datasets = flag.String("datasets", "", "comma-separated dataset subset (default: all 27)")
		verbose  = flag.Bool("v", false, "stream progress")
		tempDir  = flag.String("tmp", "", "temp dir for external builds")

		url      = flag.String("url", "http://127.0.0.1:8080", "hopdb-serve base URL (serve)")
		requests = flag.Int("requests", 1000, "total HTTP requests to send (serve)")
		conc     = flag.Int("conc", 8, "concurrent clients (serve)")
		batch    = flag.Int("batch", 1, "pairs per request; >1 uses POST /v1/batch (serve)")
		binary   = flag.Bool("binary", false, "encode batches with the compact binary encoding (serve)")
		nvert    = flag.Int("nvert", 0, "vertex id space; 0 asks the server's /v1/stats (serve)")
		seed     = flag.Int64("seed", 1, "workload seed (serve)")
		hedged   = flag.Bool("hedge", false, "run the workload twice against a hopdb-router — hedging suppressed, then enabled — and compare tail latency (serve)")

		basePath   = flag.String("base", "BENCH_BASE.json", "baseline benchmark report (benchcmp)")
		newPath    = flag.String("new", "BENCH_PR.json", "candidate benchmark report (benchcmp)")
		matchExpr  = flag.String("match", "^Benchmark(Distance|LoadIndex|BuildRanked|ShardedBatch)", "benchmark name filter (benchcmp)")
		maxRegress = flag.Float64("max-regress", 0.25, "fail benchcmp when ns/op grows by more than this fraction")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
	}
	what := flag.Arg(0)

	switch what {
	case "benchcmp":
		if err := runBenchcmp(*basePath, *newPath, *matchExpr, *maxRegress); err != nil {
			fail(err)
		}
		return
	case "serve":
		opt := bench.ServeBenchOptions{
			URL:         *url,
			Requests:    *requests,
			Concurrency: *conc,
			Batch:       *batch,
			Binary:      *binary,
			MaxVertex:   int32(*nvert),
			Seed:        *seed,
		}
		if *hedged {
			off, on, err := bench.RunServeBenchHedge(opt)
			if err != nil {
				fail(err)
			}
			bench.PrintHedgeComparison(os.Stdout, opt, off, on)
			return
		}
		res, err := bench.RunServeBench(opt)
		if err != nil {
			fail(err)
		}
		bench.PrintServeBench(os.Stdout, opt, res)
		return
	case "benchjson":
		rep, err := benchfmt.Parse(os.Stdin)
		if err != nil {
			fail(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fail(err)
		}
		return
	}

	ds := bench.Datasets()
	if *datasets != "" {
		var sel []bench.Dataset
		for _, name := range strings.Split(*datasets, ",") {
			d, ok := bench.DatasetByName(strings.TrimSpace(name))
			if !ok {
				fail(fmt.Errorf("unknown dataset %q", name))
			}
			sel = append(sel, d)
		}
		ds = sel
	}
	progress := func(string) {}
	if *verbose {
		progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}

	run := func(section string) {
		switch section {
		case "table6":
			rows, err := bench.RunTable6(ds, bench.Table6Options{
				Scale: *scale, Queries: *queries, TempDir: *tempDir, Progress: progress,
			})
			if err != nil {
				fail(err)
			}
			bench.PrintTable6(os.Stdout, rows)
		case "table7":
			rows, err := bench.RunTable7(ds, *scale)
			if err != nil {
				fail(err)
			}
			bench.PrintTable7(os.Stdout, rows)
		case "table8":
			rows, err := bench.RunTable8(ds, bench.Table8Options{Scale: *scale})
			if err != nil {
				fail(err)
			}
			bench.PrintTable8(os.Stdout, rows)
		case "fig8":
			// The paper plots BTC/Skitter, wikiEng/wikiTalk/EuAll, and
			// syn1/syn2/syn5; reuse that selection from the registry.
			sel := pick("btc", "skitter", "wikiEng", "wikiTalk", "euAll", "syn1", "syn2", "syn5")
			series, err := bench.RunFigure8(sel, *scale, 11, 0.01)
			if err != nil {
				fail(err)
			}
			bench.PrintFigure8(os.Stdout, series)
		case "fig9":
			// Scaled-down counterparts of the paper's 10M-vertex sweep.
			a, err := bench.RunFigure9Density(int32(20000**scale), []float64{2, 5, 10, 20, 35}, 91)
			if err != nil {
				fail(err)
			}
			bench.PrintFigure9(os.Stdout, "Figure 9(a): fixed |V|, growing density", a)
			b, err := bench.RunFigure9Vertices(scaleNs([]int32{5000, 10000, 20000, 40000, 80000}, *scale), 10, 92)
			if err != nil {
				fail(err)
			}
			bench.PrintFigure9(os.Stdout, "Figure 9(b): fixed density, growing |V|", b)
		case "assumptions":
			rows, err := bench.RunAssumptions(ds, *scale)
			if err != nil {
				fail(err)
			}
			bench.PrintAssumptions(os.Stdout, rows)
		case "fig10":
			d, _ := bench.DatasetByName("wikiEng")
			rows, err := bench.RunFigure10(d, *scale, 0)
			if err != nil {
				fail(err)
			}
			bench.PrintFigure10(os.Stdout, d.Name+" (switch=10, paper default)", rows)
			rows, err = bench.RunFigure10(d, *scale, 4)
			if err != nil {
				fail(err)
			}
			bench.PrintFigure10(os.Stdout, d.Name+" (switch=4, exposing the doubling phase)", rows)
		default:
			usage()
		}
	}
	if what == "all" {
		for _, s := range []string{"table6", "table7", "table8", "fig8", "fig9", "fig10", "assumptions"} {
			run(s)
			fmt.Println()
		}
		return
	}
	run(what)
}

func pick(names ...string) []bench.Dataset {
	var out []bench.Dataset
	for _, n := range names {
		if d, ok := bench.DatasetByName(n); ok {
			out = append(out, d)
		}
	}
	return out
}

func scaleNs(ns []int32, scale float64) []int32 {
	out := make([]int32, len(ns))
	for i, n := range ns {
		out[i] = int32(float64(n) * scale)
		if out[i] < 64 {
			out[i] = 64
		}
	}
	return out
}

// runBenchcmp compares two benchjson reports and fails (exit 1) on a
// regression beyond maxRegress. A CPU mismatch between the reports makes
// absolute times meaningless, so it warns and passes instead — the right
// response there is refreshing the committed baseline, not blocking the
// change under test.
func runBenchcmp(basePath, newPath, matchExpr string, maxRegress float64) error {
	match, err := regexp.Compile(matchExpr)
	if err != nil {
		return fmt.Errorf("bad -match %q: %w", matchExpr, err)
	}
	load := func(path string) (*benchfmt.Report, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		var rep benchfmt.Report
		if err := json.NewDecoder(f).Decode(&rep); err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		return &rep, nil
	}
	base, err := load(basePath)
	if err != nil {
		return err
	}
	cur, err := load(newPath)
	if err != nil {
		return err
	}
	res := benchfmt.Compare(base, cur, match, maxRegress)
	benchfmt.PrintCompare(os.Stdout, res)
	if len(res.Comparisons) == 0 {
		return fmt.Errorf("no benchmarks matched %q in both reports", matchExpr)
	}
	switch {
	case res.CPUMismatch:
		fmt.Printf("benchcmp: SKIPPED (cpu mismatch; refresh %s on this hardware)\n", basePath)
	case len(res.Regressions) > 0:
		fmt.Printf("benchcmp: FAILED, %d benchmark(s) regressed more than %.0f%%\n",
			len(res.Regressions), maxRegress*100)
		os.Exit(1)
	default:
		fmt.Printf("benchcmp: OK, %d benchmark(s) within %.0f%% of baseline\n",
			len(res.Comparisons), maxRegress*100)
	}
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: hopdb-bench [flags] all|table6|table7|table8|fig8|fig9|fig10|assumptions|serve|benchjson|benchcmp")
	flag.PrintDefaults()
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hopdb-bench:", err)
	os.Exit(1)
}
