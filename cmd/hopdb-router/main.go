// Command hopdb-router is the stateless serving tier in front of a
// fleet of hopdb-serve replicas: it health-checks the fleet, balances
// /v1/distance and /v1/batch across healthy replicas with
// power-of-two-choices on in-flight load, retries transient failures on
// other replicas (a killed replica degrades latency, not availability),
// hedges straggler requests to cut tail latency, splits large batches
// into per-replica chunks over the compact binary codec, and proxies the
// admin surface (edge writes, the replication log) to the primary.
//
// Usage:
//
//	hopdb-router -replicas http://a:8080,http://b:8080,http://c:8080 \
//	    [-primary http://a:8080] [-addr :8090] [-hedge 2ms] \
//	    [-chunk 256] [-max-batch 10000] [-health-interval 500ms] \
//	    [-shard-map shards/shard.json]
//
// With -shard-map the replicas are rank shards from hopdb-build
// -shards (each started with hopdb-serve -shard): the router loads the
// replicated hub shard into its own memory, answers hub-covered pairs
// locally without any leaf RPC, batches same-leaf pairs natively to
// their owner, and scatter-gathers the rest — fetching each pair's two
// label rows from their owning shards over POST /v1/rows and merging
// locally — all through the same hedging/failover machinery.
//
// Routing is dataset-aware: replicas advertise the datasets they serve
// in /v1/stats, and /v1/{dataset}/* requests scatter only to replicas
// advertising that dataset (the flat /v1/* routes serve "default").
// Authorization and X-Hopdb-Request-Id headers are forwarded, so
// per-principal auth happens at the replicas and one request id appears
// in every tier's access log.
//
// Endpoints:
//
//	GET  /v1/[{ds}/]distance?s=1&t=2  balanced + hedged over the fleet
//	POST /v1/[{ds}/]batch      split, fanned out, reassembled in order
//	GET  /v1/[{ds}/]path       relayed whole to one replica
//	GET  /v1/{ds}/stats        relayed to a replica serving the dataset
//	GET  /v1/healthz           200 while at least one replica is healthy
//	GET  /v1/stats             router counters + per-replica states
//	GET  /v1/metrics           Prometheus text exposition
//	GET  /v1/admin/accesslog   the router's own access-log ring
//	ANY  /v1/admin/*           proxied to -primary (501 without one)
//
// Responses carry X-Hopdb-Seq / X-Hopdb-Epoch from the answering replica
// (for batches: the minimum across chunks); clients demand
// read-your-writes by sending X-Hopdb-Min-Seq, which the router forwards
// — a behind replica answers 503 and the router fails over to a
// caught-up one. X-Hopdb-No-Hedge disables hedging per request.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/shard"
)

func main() {
	var (
		replicas  = flag.String("replicas", "", "comma-separated replica base URLs (required)")
		primary   = flag.String("primary", "", "primary base URL for /v1/admin/* proxying (writes, replication log)")
		addr      = flag.String("addr", ":8090", "listen address")
		hedge     = flag.Duration("hedge", 0, "hedge a second replica when the first has not answered within this budget (0 disables)")
		chunk     = flag.Int("chunk", cluster.DefaultChunkSize, "pairs per replica chunk when splitting batches")
		maxBatch  = flag.Int("max-batch", cluster.DefaultMaxBatch, "largest accepted batch request, in pairs")
		attempts  = flag.Int("attempts", 0, "max tries per request across replicas (0 = one per replica)")
		healthInt = flag.Duration("health-interval", cluster.DefaultHealthInterval, "replica health probe cadence")
		upTimeout = flag.Duration("upstream-timeout", cluster.DefaultUpstreamTimeout, "per-attempt upstream budget")
		accessN   = flag.Int("accesslog", 0, "access-log ring capacity in entries (0 selects 1024)")
		drain     = flag.Duration("drain", 15*time.Second, "graceful shutdown drain budget")
		shardMapP = flag.String("shard-map", "", "shard.json from hopdb-build -shards: replicas are rank shards; scatter-gather with the hub shard router-resident")
	)
	flag.Parse()
	urls := splitURLs(*replicas)
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "hopdb-router: -replicas is required (comma-separated base URLs)")
		flag.Usage()
		os.Exit(2)
	}

	var (
		smap *shard.Map
		hub  *shard.Shard
	)
	if *shardMapP != "" {
		var err error
		if smap, err = shard.LoadMap(*shardMapP); err != nil {
			fail(err)
		}
		if hub, err = shard.Load(shard.Resolve(*shardMapP, smap.HubFile)); err != nil {
			fail(err)
		}
		log.Printf("sharded routing: %d leaf shards, hub tier [0,%d) router-resident (%d entries, %.2fMB)",
			len(smap.Shards), smap.HubRanks, hub.Entries(), float64(hub.SizeBytes())/(1<<20))
	}

	pool := cluster.NewPool(urls, nil, *healthInt)
	rt, err := cluster.NewRouter(pool, cluster.RouterConfig{
		HedgeDelay:      *hedge,
		MaxBatch:        *maxBatch,
		ChunkSize:       *chunk,
		MaxAttempts:     *attempts,
		Primary:         *primary,
		UpstreamTimeout: *upTimeout,
		AccessLogSize:   *accessN,
		ShardMap:        smap,
		Hub:             hub,
	})
	if err != nil {
		fail(err)
	}
	pool.Start()
	defer pool.Stop()
	log.Printf("fronting %d replicas (%d healthy at startup), hedge=%v, chunk=%d",
		pool.Size(), pool.Healthy(), *hedge, *chunk)
	if *primary != "" {
		log.Printf("proxying /v1/admin/* to %s", *primary)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	log.Printf("routing on http://%s", ln.Addr())

	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		if !errors.Is(err, http.ErrServerClosed) {
			fail(err)
		}
	case s := <-sig:
		log.Printf("received %v, draining (budget %v)", s, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("drain incomplete: %v", err)
		}
		<-done
	}
	st := rt.Stats()
	log.Printf("routed %d requests (%d pairs) over %.1fs: %d retries, %d hedges (%d wins), %d upstream errors",
		st.Requests, st.Queries, st.UptimeSeconds, st.Retries, st.Hedges, st.HedgeWins, st.UpstreamErrors)
}

// splitURLs parses the -replicas list, dropping empties and trailing
// slashes.
func splitURLs(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(strings.TrimRight(part, "/"))
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hopdb-router:", err)
	os.Exit(1)
}
