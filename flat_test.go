package hopdb

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
)

// TestDistanceBatchRaceFlat hammers DistanceBatch with many workers over
// the flat CSR index — including a memory-mapped one — so `go test -race`
// verifies the query hot path is free of data races.
func TestDistanceBatchRaceFlat(t *testing.T) {
	g, err := gen.GLP(gen.DefaultGLP(500, 4, 23))
	if err != nil {
		t.Fatal(err)
	}
	idx, _, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "race.idx")
	if err := idx.Save(path); err != nil {
		t.Fatal(err)
	}
	mapped, err := LoadIndexFlat(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()

	var pairs []QueryPair
	for s := int32(0); s < g.N(); s += 3 {
		for u := int32(0); u < g.N(); u += 41 {
			pairs = append(pairs, QueryPair{S: s, T: u})
		}
	}
	want := idx.DistanceBatch(pairs, 1)
	for _, x := range []*Index{idx, mapped} {
		got := x.DistanceBatch(pairs, 8)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("parallel batch differs at %d: %d vs %d", i, got[i], want[i])
			}
		}
	}
}

// TestLoadIndexV1Compat checks that indexes saved in the legacy v1
// entry-stream format still load and answer identically to the v2 flat
// form.
func TestLoadIndexV1Compat(t *testing.T) {
	g, err := gen.GLP(gen.DefaultGLP(300, 3, 29))
	if err != nil {
		t.Fatal(err)
	}
	idx, _, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	v1 := filepath.Join(dir, "v1.idx")
	f, err := os.Create(v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Labels().Write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(v1)
	if err != nil {
		t.Fatal(err)
	}
	for s := int32(0); s < g.N(); s += 13 {
		for u := int32(0); u < g.N(); u += 17 {
			a, _ := idx.Distance(s, u)
			b, _ := loaded.Distance(s, u)
			if a != b {
				t.Fatalf("v1-loaded index differs at (%d,%d): %d vs %d", s, u, a, b)
			}
		}
	}
}
