package hopdb_test

// BenchmarkShardedBatch sits in the CI regression gate next to
// BenchmarkDistance/LoadIndex/BuildRanked: it measures the router's
// scatter-gather batch path end to end — classification, hub-local
// answers, native same-leaf chunks, row fetches over /v1/rows, and the
// local merge — over real HTTP to four leaf shards.

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	hopdb "repro"
	"repro/internal/cluster"
	"repro/internal/gen"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/wire"
)

func BenchmarkShardedBatch(b *testing.B) {
	g, err := gen.GLP(gen.DefaultGLP(2000, 4, 7))
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	m, _, err := hopdb.BuildShards(g, hopdb.Options{}, hopdb.ShardConfig{Shards: 4, Dir: dir})
	if err != nil {
		b.Fatal(err)
	}
	var urls []string
	for _, sh := range m.Shards {
		leaf, err := hopdb.OpenShard(filepath.Join(dir, sh.File))
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { leaf.Close() })
		ts := httptest.NewServer(server.New(leaf, server.Config{Workers: 2}).Handler())
		b.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
	}
	hub, err := shard.Load(filepath.Join(dir, m.HubFile))
	if err != nil {
		b.Fatal(err)
	}
	pool := cluster.NewPool(urls, nil, time.Hour)
	pool.Probe()
	rt, err := cluster.NewRouter(pool, cluster.RouterConfig{ShardMap: m, Hub: hub})
	if err != nil {
		b.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	b.Cleanup(rts.Close)

	// A deterministic mix of hub-local, same-leaf, and cross-shard pairs.
	const pairsPerBatch = 256
	pairs := make([]wire.QueryPair, pairsPerBatch)
	n := g.N()
	for i := range pairs {
		pairs[i] = wire.QueryPair{S: int32(i*37) % n, T: int32(i*91+13) % n}
	}
	body := wire.AppendBatchRequest(nil, pairs)
	dists := make([]uint32, 0, pairsPerBatch)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(rts.URL+"/v1/batch", wire.ContentTypeBinaryBatch, bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("batch returned %d: %s", resp.StatusCode, raw)
		}
		if dists, err = wire.DecodeBatchResponse(dists[:0], raw); err != nil {
			b.Fatal(err)
		}
		if len(dists) != pairsPerBatch {
			b.Fatalf("got %d answers, want %d", len(dists), pairsPerBatch)
		}
	}
	b.StopTimer()
	st := rt.Stats()
	b.ReportMetric(float64(pairsPerBatch)*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
	if st.HubLocal == 0 || st.RowFetches == 0 {
		b.Fatalf("benchmark did not exercise the sharded paths: hub_local=%d row_fetches=%d", st.HubLocal, st.RowFetches)
	}
}
