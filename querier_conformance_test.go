package hopdb_test

// The Querier conformance suite: one table of graphs, one set of checks,
// run against every backend — heap, mmap, disk, bit-parallel, and the
// HTTP client talking to a live server. The paper's claim is that the
// same 2-hop label index answers exact queries in every deployment
// regime; this suite pins the repo to that claim, asserting identical
// answers and identical Infinity/ok semantics everywhere.

import (
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	hopdb "repro"
	"repro/internal/cluster"
	"repro/internal/gen"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/sp"
)

// confGraph is one row of the conformance table.
type confGraph struct {
	name     string
	directed bool
	weighted bool
	build    func(t *testing.T) *hopdb.Graph
}

func confGraphs() []confGraph {
	return []confGraph{
		{
			// Hand-built components: a path, a separate edge, and an
			// isolated vertex, so unreachable pairs definitely exist.
			name: "undirected-components",
			build: func(t *testing.T) *hopdb.Graph {
				b := hopdb.NewGraphBuilder(false, false)
				b.AddEdge(0, 1, 1)
				b.AddEdge(1, 2, 1)
				b.AddEdge(2, 3, 1)
				b.AddEdge(4, 5, 1)
				b.Grow(7) // vertex 6 is isolated
				g, err := b.Build()
				if err != nil {
					t.Fatal(err)
				}
				return g
			},
		},
		{
			name: "undirected-scalefree",
			build: func(t *testing.T) *hopdb.Graph {
				g, err := gen.GLP(gen.DefaultGLP(60, 3, 41))
				if err != nil {
					t.Fatal(err)
				}
				return g
			},
		},
		{
			name:     "directed-powerlaw",
			directed: true,
			build: func(t *testing.T) *hopdb.Graph {
				g, err := gen.PowerLaw(gen.PowerLawParams{
					N: 50, Density: 3, Alpha: 2.2, Directed: true, Seed: 43,
				})
				if err != nil {
					t.Fatal(err)
				}
				return g
			},
		},
		{
			name:     "undirected-weighted",
			weighted: true,
			build: func(t *testing.T) *hopdb.Graph {
				g0, err := gen.ER(40, 90, false, 45)
				if err != nil {
					t.Fatal(err)
				}
				g, err := gen.WithRandomWeights(g0, 9, 45)
				if err != nil {
					t.Fatal(err)
				}
				return g
			},
		},
	}
}

// confBackend is one opened backend under test plus its expected kind
// and (when non-empty) the kernel its Stats must report.
type confBackend struct {
	name    string
	kind    hopdb.Backend
	kernel  hopdb.Kernel
	querier hopdb.Querier
}

// openBackends builds the index for g once and opens it through every
// backend. The bit-parallel backend only exists for undirected
// unweighted graphs (the paper's Section 6 restriction).
func openBackends(t *testing.T, g *hopdb.Graph, gc confGraph) []confBackend {
	t.Helper()
	idx, _, err := hopdb.Build(g, hopdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	idxPath := filepath.Join(dir, "conf.idx")
	diskPath := filepath.Join(dir, "conf.didx")
	compactPath := filepath.Join(dir, "conf.cidx")
	if err := idx.Save(idxPath); err != nil {
		t.Fatal(err)
	}
	if err := idx.SaveDiskIndex(diskPath); err != nil {
		t.Fatal(err)
	}
	if err := idx.SaveCompact(compactPath); err != nil {
		t.Fatal(err)
	}
	// The server serves idx twice: as "default" (the flat /v1 routes)
	// and as the named dataset "conf" (/v1/conf/*) — the remote backend
	// must answer identically through both spellings.
	srv := server.New(idx, server.Config{Workers: 4})
	if err := srv.Attach("conf", idx, false); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	open := func(name string, kind hopdb.Backend, kernel hopdb.Kernel, path string, opts ...hopdb.OpenOption) confBackend {
		q, err := hopdb.Open(path, opts...)
		if err != nil {
			t.Fatalf("opening %s backend: %v", name, err)
		}
		t.Cleanup(func() { q.Close() })
		return confBackend{name: name, kind: kind, kernel: kernel, querier: q}
	}
	// The conformance graphs are all encodable (small distances), so heap
	// opens — including the one behind the remote server — auto-enable the
	// compact kernel; mmap stays scalar unless opted in.
	backends := []confBackend{
		open("heap", hopdb.BackendHeap, hopdb.KernelCompact, idxPath),
		open("mmap", hopdb.BackendMmap, hopdb.KernelScalar, idxPath, hopdb.WithMmap()),
		open("mmap-compact", hopdb.BackendMmap, hopdb.KernelCompact, idxPath, hopdb.WithMmap(), hopdb.WithCompactKernel()),
		open("compact-file", hopdb.BackendHeap, hopdb.KernelCompact, compactPath),
		open("disk", hopdb.BackendDisk, hopdb.KernelScalar, diskPath, hopdb.WithDisk(hopdb.DiskOptions{CacheLabels: 16})),
		open("remote", hopdb.BackendRemote, hopdb.KernelCompact, "", hopdb.WithRemote(ts.URL)),
		open("remote-dataset", hopdb.BackendRemote, hopdb.KernelCompact, "", hopdb.WithRemote(ts.URL), hopdb.WithDataset("conf")),
	}
	if !gc.directed && !gc.weighted {
		backends = append(backends,
			open("bitparallel", hopdb.BackendHeap, hopdb.KernelBitParallel, idxPath,
				hopdb.WithGraph(g), hopdb.WithBitParallel(8)))
	}
	// The sharded deployment: rank shards behind a scatter-gather
	// router, reached through the same remote client. Byte-identical
	// answers here are the acceptance criterion for sharded serving.
	backends = append(backends, confBackend{
		name: "sharded", kind: hopdb.BackendRemote, querier: openSharded(t, g),
	})
	return backends
}

// openSharded stands up the full sharded serving stack for g — three
// leaf shards plus a hub tier built through the external-memory
// pipeline, one HTTP server per leaf, and a scatter-gather router
// fronting them with the hub router-resident — and returns a remote
// client opened against the router.
func openSharded(t *testing.T, g *hopdb.Graph) hopdb.Querier {
	t.Helper()
	dir := t.TempDir()
	m, _, err := hopdb.BuildShards(g, hopdb.Options{}, hopdb.ShardConfig{Shards: 3, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var urls []string
	for _, sh := range m.Shards {
		leaf, err := hopdb.OpenShard(filepath.Join(dir, sh.File))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { leaf.Close() })
		srv := server.New(leaf, server.Config{Workers: 2})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
	}
	hub, err := shard.Load(filepath.Join(dir, m.HubFile))
	if err != nil {
		t.Fatal(err)
	}
	pool := cluster.NewPool(urls, nil, time.Hour)
	pool.Probe()
	rt, err := cluster.NewRouter(pool, cluster.RouterConfig{ShardMap: m, Hub: hub})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)
	q, err := hopdb.Open("", hopdb.WithRemote(rts.URL))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { q.Close() })
	return q
}

// TestQuerierConformance runs every backend over every graph and demands
// byte-identical answers: same distances, same Infinity values, same ok
// flags, for single queries and batches (serial and parallel, through a
// reused results buffer).
func TestQuerierConformance(t *testing.T) {
	for _, gc := range confGraphs() {
		t.Run(gc.name, func(t *testing.T) {
			g := gc.build(t)
			truth := sp.AllPairs(g)
			n := g.N()

			// The query set: all pairs, plus out-of-range ids on both
			// sides. want[i] is the reference answer for pairs[i].
			var pairs []hopdb.QueryPair
			var want []uint32
			for s := int32(0); s < n; s++ {
				for u := int32(0); u < n; u++ {
					pairs = append(pairs, hopdb.QueryPair{S: s, T: u})
					want = append(want, truth[s][u])
				}
			}
			for _, p := range []hopdb.QueryPair{{S: -1, T: 0}, {S: 0, T: -2}, {S: n, T: 0}, {S: 0, T: n + 5}} {
				pairs = append(pairs, p)
				want = append(want, hopdb.Infinity)
			}

			for _, be := range openBackends(t, g, gc) {
				t.Run(be.name, func(t *testing.T) {
					q := be.querier
					if q.N() != n {
						t.Fatalf("N() = %d, want %d", q.N(), n)
					}
					st := q.Stats()
					if st.Backend != be.kind {
						t.Errorf("Stats().Backend = %q, want %q", st.Backend, be.kind)
					}
					if st.Vertices != n || st.Directed != gc.directed {
						t.Errorf("Stats() = %+v, want %d vertices, directed=%v", st, n, gc.directed)
					}
					if be.name == "bitparallel" && !st.BitParallel {
						t.Error("Stats().BitParallel = false on the bit-parallel backend")
					}
					if be.kernel != "" && st.Kernel != be.kernel {
						t.Errorf("Stats().Kernel = %q, want %q", st.Kernel, be.kernel)
					}

					// Every backend also exposes the error-reporting
					// extension the server relies on.
					lq, hasLookup := q.(hopdb.Lookuper)
					blq, hasBatchLookup := q.(hopdb.LookupBatcher)
					if !hasLookup || !hasBatchLookup {
						t.Fatalf("backend lacks Lookuper/LookupBatcher (%v/%v)", hasLookup, hasBatchLookup)
					}

					// Single queries: answer and ok semantics, with
					// Lookup agreeing and reporting no error.
					for i, p := range pairs {
						d, ok := q.Distance(p.S, p.T)
						if d != want[i] {
							t.Fatalf("Distance(%d,%d) = %d, want %d", p.S, p.T, d, want[i])
						}
						if ok != (d != hopdb.Infinity) {
							t.Fatalf("Distance(%d,%d) ok=%v disagrees with d=%d", p.S, p.T, ok, d)
						}
						ld, lok, lerr := lq.Lookup(p.S, p.T)
						if lerr != nil || ld != d || lok != ok {
							t.Fatalf("Lookup(%d,%d) = (%d,%v,%v), want (%d,%v,nil)", p.S, p.T, ld, lok, lerr, d, ok)
						}
					}

					// Batches through one reused buffer, serial then
					// sharded, via both batch entry points: must equal
					// the singles exactly.
					results := make([]uint32, len(pairs))
					for _, workers := range []int{1, 4} {
						out := q.DistanceBatchInto(results, pairs, workers)
						if len(out) != len(pairs) {
							t.Fatalf("workers=%d: batch returned %d results for %d pairs", workers, len(out), len(pairs))
						}
						for i := range out {
							if out[i] != want[i] {
								t.Fatalf("workers=%d: batch[%d] (%d,%d) = %d, want %d",
									workers, i, pairs[i].S, pairs[i].T, out[i], want[i])
							}
						}
						lout, lerr := blq.LookupBatchInto(results, pairs, workers)
						if lerr != nil {
							t.Fatalf("workers=%d: LookupBatchInto error: %v", workers, lerr)
						}
						for i := range lout {
							if lout[i] != want[i] {
								t.Fatalf("workers=%d: lookup batch[%d] = %d, want %d", workers, i, lout[i], want[i])
							}
						}
					}
				})
			}
		})
	}
}

// TestQuerierConformanceBackendsAgree is the pairwise closure of the
// suite: beyond matching ground truth, every backend must match every
// other backend on a deterministic mixed workload (the acceptance
// criterion is "byte-identical answers", not just "correct answers").
func TestQuerierConformanceBackendsAgree(t *testing.T) {
	gc := confGraphs()[1] // scale-free undirected: all five backends exist
	g := gc.build(t)
	backends := openBackends(t, g, gc)
	n := g.N()
	var pairs []hopdb.QueryPair
	for i := int32(0); i < 500; i++ {
		pairs = append(pairs, hopdb.QueryPair{S: (i * 37) % n, T: (i*91 + 13) % n})
	}
	answers := make([][]uint32, len(backends))
	for i, be := range backends {
		answers[i] = be.querier.DistanceBatchInto(make([]uint32, len(pairs)), pairs, 3)
	}
	for i := 1; i < len(backends); i++ {
		for j := range pairs {
			if answers[i][j] != answers[0][j] {
				t.Fatalf("%s and %s disagree on (%d,%d): %d vs %d",
					backends[i].name, backends[0].name, pairs[j].S, pairs[j].T,
					answers[i][j], answers[0][j])
			}
		}
	}
}

// TestQuerierConformanceUpdated extends the suite to indexes mutated
// online: for every conformance graph, a WithUpdates backend applies a
// deterministic mix of deletes and inserts, and then the live dynamic
// querier AND the patched file reopened through the heap and mmap
// backends must all answer the mutated graph's ground truth exactly —
// verifying that patched labels persist.
func TestQuerierConformanceUpdated(t *testing.T) {
	for _, gc := range confGraphs() {
		t.Run(gc.name, func(t *testing.T) {
			g := gc.build(t)
			n := g.N()
			idx, _, err := hopdb.Build(g, hopdb.Options{})
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			idxPath := filepath.Join(dir, "upd.idx")
			if err := idx.Save(idxPath); err != nil {
				t.Fatal(err)
			}
			q, err := hopdb.Open(idxPath, hopdb.WithGraph(g), hopdb.WithUpdates(hopdb.UpdateOptions{}))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { q.Close() })
			u := q.(hopdb.Updatable)

			// Mirror the edge set; mutate: delete the first and middle
			// edges, insert the first three non-edges found (weight 2 on
			// weighted graphs).
			type edge struct{ a, b int32 }
			canon := func(a, b int32) edge {
				if !gc.directed && a > b {
					a, b = b, a
				}
				return edge{a, b}
			}
			edges := map[edge]int32{}
			var list []edge
			for a := int32(0); a < n; a++ {
				ws := g.OutWeights(a)
				for i, b := range g.OutNeighbors(a) {
					if !gc.directed && a > b {
						continue
					}
					w := int32(1)
					if ws != nil {
						w = ws[i]
					}
					k := canon(a, b)
					if _, ok := edges[k]; !ok {
						list = append(list, k)
					}
					edges[k] = w
				}
			}
			var ops []hopdb.EdgeOp
			for _, k := range []edge{list[0], list[len(list)/2]} {
				ops = append(ops, hopdb.EdgeOp{Op: hopdb.OpDelete, U: k.a, V: k.b})
				delete(edges, k)
			}
			inserted := 0
			for a := int32(0); a < n && inserted < 3; a++ {
				for b := int32(0); b < n && inserted < 3; b++ {
					k := canon(a, b)
					if a == b {
						continue
					}
					if _, ok := edges[k]; ok {
						continue
					}
					w := int32(1)
					if gc.weighted {
						w = 2
					}
					ops = append(ops, hopdb.EdgeOp{Op: hopdb.OpInsert, U: k.a, V: k.b, W: w})
					edges[k] = w
					inserted++
				}
			}
			if applied, err := hopdb.ApplyEdgeOps(u, ops); err != nil {
				t.Fatalf("applied %d ops, then: %v", applied, err)
			}

			// Ground truth of the mutated graph.
			b := hopdb.NewGraphBuilder(gc.directed, gc.weighted)
			b.Grow(n)
			for k, w := range edges {
				b.AddEdge(k.a, k.b, w)
			}
			mutated, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			truth := sp.AllPairs(mutated)

			patched := filepath.Join(dir, "patched.idx")
			if err := u.Save(patched); err != nil {
				t.Fatal(err)
			}
			backends := []confBackend{
				{name: "dynamic", kind: hopdb.BackendDynamic, querier: q},
			}
			open := func(name string, kind hopdb.Backend, opts ...hopdb.OpenOption) {
				rq, err := hopdb.Open(patched, opts...)
				if err != nil {
					t.Fatalf("reopening %s: %v", name, err)
				}
				t.Cleanup(func() { rq.Close() })
				backends = append(backends, confBackend{name: name, kind: kind, querier: rq})
			}
			open("heap-reopened", hopdb.BackendHeap)
			open("mmap-reopened", hopdb.BackendMmap, hopdb.WithMmap())

			var pairs []hopdb.QueryPair
			var want []uint32
			for s := int32(0); s < n; s++ {
				for v := int32(0); v < n; v++ {
					pairs = append(pairs, hopdb.QueryPair{S: s, T: v})
					want = append(want, truth[s][v])
				}
			}
			pairs = append(pairs, hopdb.QueryPair{S: -1, T: 0}, hopdb.QueryPair{S: 0, T: n + 3})
			want = append(want, hopdb.Infinity, hopdb.Infinity)
			for _, be := range backends {
				t.Run(be.name, func(t *testing.T) {
					if st := be.querier.Stats(); st.Backend != be.kind {
						t.Errorf("Stats().Backend = %q, want %q", st.Backend, be.kind)
					}
					for i, p := range pairs {
						if d, _ := be.querier.Distance(p.S, p.T); d != want[i] {
							t.Fatalf("Distance(%d,%d) = %d, want %d", p.S, p.T, d, want[i])
						}
					}
					out := be.querier.DistanceBatchInto(make([]uint32, len(pairs)), pairs, 3)
					for i := range out {
						if out[i] != want[i] {
							t.Fatalf("batch[%d] (%d,%d) = %d, want %d", i, pairs[i].S, pairs[i].T, out[i], want[i])
						}
					}
				})
			}
		})
	}
}

// TestOpenOptionValidation pins the Open misuse errors.
func TestOpenOptionValidation(t *testing.T) {
	gc := confGraphs()[0]
	g := gc.build(t)
	idx, _, err := hopdb.Build(g, hopdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	idxPath := filepath.Join(dir, "v.idx")
	diskPath := filepath.Join(dir, "v.didx")
	if err := idx.Save(idxPath); err != nil {
		t.Fatal(err)
	}
	if err := idx.SaveDiskIndex(diskPath); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		path string
		opts []hopdb.OpenOption
	}{
		{"disk+mmap", diskPath, []hopdb.OpenOption{hopdb.WithDisk(hopdb.DiskOptions{}), hopdb.WithMmap()}},
		{"disk+graph", diskPath, []hopdb.OpenOption{hopdb.WithDisk(hopdb.DiskOptions{}), hopdb.WithGraph(g)}},
		{"bitparallel without graph", idxPath, []hopdb.OpenOption{hopdb.WithBitParallel(8)}},
		{"missing file", filepath.Join(dir, "nope.idx"), nil},
	}
	for _, c := range cases {
		if q, err := hopdb.Open(c.path, c.opts...); err == nil {
			q.Close()
			t.Errorf("%s: Open succeeded, want error", c.name)
		}
	}
	// WithGraph enables path reconstruction through the Pather interface.
	q, err := hopdb.Open(idxPath, hopdb.WithGraph(g))
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	p, ok := q.(hopdb.Pather)
	if !ok {
		t.Fatal("heap backend with graph does not implement Pather")
	}
	path, err := p.Path(0, 3)
	if err != nil || len(path) != 4 {
		t.Fatalf("Path(0,3) = %v, %v", path, err)
	}
}
