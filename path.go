package hopdb

import (
	"fmt"

	"repro/internal/wire"
)

// Path reconstruction errors. They are shared wire-level sentinels so a
// remote client (package repro/client) returns the same values the
// in-process index does, and errors.Is works across backends.
var (
	// ErrNoGraph is returned by Path when the index has no attached
	// graph (e.g. freshly loaded from disk); see AttachGraph.
	ErrNoGraph = wire.ErrNoGraph
	// ErrUnreachable is returned by Path when t is not reachable from s.
	ErrUnreachable = wire.ErrUnreachable
)

// Path reconstructs one shortest path from s to t (inclusive of both
// endpoints) using the index plus the original graph: from each vertex it
// steps to any out-neighbor that lies on a shortest path, verified with
// one distance query per neighbor. This is an extension beyond the paper,
// which reports distances only; the cost is O(path length * average
// degree) index queries.
//
// It returns ErrNoGraph when no graph is attached, ErrUnreachable when no
// path exists, and a descriptive error when the index is inconsistent
// with the graph (e.g. a corrupt file was loaded), so a serving process
// never crashes on bad input.
func (x *Index) Path(s, t int32) ([]int32, error) {
	if x.g == nil {
		return nil, ErrNoGraph
	}
	total, ok := x.Distance(s, t)
	if !ok {
		return nil, ErrUnreachable
	}
	path := []int32{s}
	cur := s
	remaining := total
	for cur != t {
		adj := x.g.OutNeighbors(cur)
		ws := x.g.OutWeights(cur)
		next := int32(-1)
		var nextRemaining uint32
		for i, v := range adj {
			w := uint32(1)
			if ws != nil {
				w = uint32(ws[i])
			}
			if w > remaining {
				continue
			}
			dvt, okV := x.Distance(v, t)
			if okV && w+dvt == remaining {
				next = v
				nextRemaining = dvt
				break
			}
		}
		if next < 0 {
			return nil, fmt.Errorf("hopdb: path reconstruction stuck at %d (remaining %d): index inconsistent with graph", cur, remaining)
		}
		path = append(path, next)
		cur = next
		remaining = nextRemaining
	}
	return path, nil
}

// PathLength sums the edge weights along a path, validating that each hop
// is an edge of the graph. Used by tests and example programs to check
// reconstructed paths.
func (x *Index) PathLength(path []int32) (uint32, error) {
	if x.g == nil {
		return 0, ErrNoGraph
	}
	var total uint32
	for i := 0; i+1 < len(path); i++ {
		w, ok := x.g.EdgeWeight(path[i], path[i+1])
		if !ok {
			return 0, fmt.Errorf("hopdb: (%d,%d) is not an edge", path[i], path[i+1])
		}
		total += uint32(w)
	}
	return total, nil
}
