package client_test

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	hopdb "repro"
	"repro/client"
	"repro/internal/server"
)

// The remote backend must satisfy the same contracts as the local ones.
var (
	_ hopdb.Querier = (*client.Client)(nil)
	_ hopdb.Pather  = (*client.Client)(nil)
)

// testIndex builds an index over two components: a path 0-1-2-3 and an
// edge 4-5, so both reachable and unreachable pairs exist.
func testIndex(t *testing.T, attachGraph bool) *hopdb.Index {
	t.Helper()
	b := hopdb.NewGraphBuilder(false, false)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 1)
	b.AddEdge(4, 5, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	idx, _, err := hopdb.Build(g, hopdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !attachGraph {
		// Round-trip through a file to drop the graph.
		file := t.TempDir() + "/g.idx"
		if err := idx.Save(file); err != nil {
			t.Fatal(err)
		}
		loaded, err := hopdb.LoadIndex(file)
		if err != nil {
			t.Fatal(err)
		}
		return loaded
	}
	return idx
}

func newServerAndClient(t *testing.T, opt client.Options) (*hopdb.Index, *client.Client) {
	t.Helper()
	idx := testIndex(t, true)
	ts := httptest.NewServer(server.New(idx, server.Config{CacheEntries: 32}).Handler())
	t.Cleanup(ts.Close)
	c, err := client.New(ts.URL, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return idx, c
}

func TestClientMatchesLocalIndex(t *testing.T) {
	for _, jsonBatch := range []bool{false, true} {
		idx, c := newServerAndClient(t, client.Options{JSONBatch: jsonBatch})
		if c.N() != idx.N() {
			t.Fatalf("N = %d, want %d", c.N(), idx.N())
		}
		var pairs []hopdb.QueryPair
		for s := int32(0); s < idx.N(); s++ {
			for u := int32(0); u < idx.N(); u++ {
				want, wantOK := idx.Distance(s, u)
				got, ok, err := c.Lookup(s, u)
				if err != nil {
					t.Fatal(err)
				}
				if ok != wantOK || (ok && got != want) {
					t.Errorf("Lookup(%d,%d) = (%d,%v), want (%d,%v)", s, u, got, ok, want, wantOK)
				}
				got2, ok2 := c.Distance(s, u)
				if got2 != got || ok2 != ok {
					t.Errorf("Distance(%d,%d) = (%d,%v) disagrees with Lookup", s, u, got2, ok2)
				}
				pairs = append(pairs, hopdb.QueryPair{S: s, T: u})
			}
		}
		// Batch (twice through the same reused buffer) vs the local index.
		results := make([]uint32, len(pairs))
		for round := 0; round < 2; round++ {
			out := c.DistanceBatchInto(results, pairs, 4)
			for i, p := range pairs {
				want, _ := idx.Distance(p.S, p.T)
				if out[i] != want {
					t.Fatalf("jsonBatch=%v round %d: batch[%d] (%d,%d) = %d, want %d",
						jsonBatch, round, i, p.S, p.T, out[i], want)
				}
			}
		}
		// Out-of-range ids answer Infinity like every other backend.
		if d, ok := c.Distance(-1, 99); ok || d != hopdb.Infinity {
			t.Errorf("out-of-range = (%d,%v), want (Infinity,false)", d, ok)
		}
	}
}

func TestClientPath(t *testing.T) {
	idx, c := newServerAndClient(t, client.Options{})
	path, err := c.Path(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := idx.Path(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != len(want) {
		t.Fatalf("Path(0,3) = %v, want %v", path, want)
	}
	for i := range path {
		if path[i] != want[i] {
			t.Fatalf("Path(0,3) = %v, want %v", path, want)
		}
	}
	if _, err := c.Path(0, 5); !errors.Is(err, hopdb.ErrUnreachable) {
		t.Errorf("Path(0,5) error = %v, want ErrUnreachable", err)
	}
}

func TestClientPathNoGraph(t *testing.T) {
	idx := testIndex(t, false)
	ts := httptest.NewServer(server.New(idx, server.Config{}).Handler())
	defer ts.Close()
	c, err := client.New(ts.URL, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Path(0, 3); !errors.Is(err, hopdb.ErrNoGraph) {
		t.Errorf("Path on graph-less server = %v, want ErrNoGraph", err)
	}
}

func TestClientStats(t *testing.T) {
	idx, c := newServerAndClient(t, client.Options{})
	st := c.Stats()
	if st.Backend != hopdb.BackendRemote {
		t.Errorf("Stats().Backend = %q, want remote", st.Backend)
	}
	if st.Vertices != idx.N() || st.Entries != idx.Entries() {
		t.Errorf("Stats() = %+v, want %d vertices / %d entries", st, idx.N(), idx.Entries())
	}
	ss, err := c.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if ss.Backend != string(hopdb.BackendHeap) {
		t.Errorf("ServerStats().Backend = %q, want heap (the server's own kind)", ss.Backend)
	}
}

func TestOpenWithRemote(t *testing.T) {
	idx := testIndex(t, true)
	ts := httptest.NewServer(server.New(idx, server.Config{}).Handler())
	defer ts.Close()
	q, err := hopdb.Open("", hopdb.WithRemote(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if _, ok := q.(*client.Client); !ok {
		t.Fatalf("Open(WithRemote) returned %T, want *client.Client", q)
	}
	d, ok := q.Distance(0, 3)
	if !ok || d != 3 {
		t.Errorf("remote Distance(0,3) = (%d,%v), want (3,true)", d, ok)
	}
	// Misuse errors.
	if _, err := hopdb.Open("some.idx", hopdb.WithRemote(ts.URL)); err == nil {
		t.Error("Open(path, WithRemote) accepted a non-empty path")
	}
	if _, err := hopdb.Open("", hopdb.WithRemote(ts.URL), hopdb.WithMmap()); err == nil {
		t.Error("Open(WithRemote, WithMmap) accepted conflicting options")
	}
	if _, err := hopdb.Open("", hopdb.WithRemote("http://127.0.0.1:1/")); err == nil {
		t.Error("Open(WithRemote) succeeded against a dead server")
	}
	if _, err := hopdb.Open("", hopdb.WithRemote("not a url")); err == nil {
		t.Error("Open(WithRemote) accepted a garbage URL")
	}
}

// flakyHandler answers 503 for the first fail requests to a path (the
// handshake /v1/stats is never failed so New succeeds), then delegates.
func flakyFront(inner http.Handler, fail int) http.Handler {
	var n atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/stats" && n.Add(1) <= int64(fail) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"warming up"}`))
			return
		}
		inner.ServeHTTP(w, r)
	})
}

func TestClientRetriesTransient(t *testing.T) {
	idx := testIndex(t, true)
	inner := server.New(idx, server.Config{}).Handler()
	ts := httptest.NewServer(flakyFront(inner, 2))
	t.Cleanup(ts.Close)
	c, err := client.New(ts.URL, client.Options{
		MaxAttempts: 3,
		RetryBase:   time.Millisecond,
		RetryMax:    5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Two 503s then success: the third attempt lands.
	d, ok, err := c.Lookup(0, 3)
	if err != nil || !ok || d != 3 {
		t.Fatalf("Lookup through flaky server = (%d,%v,%v), want (3,true,nil)", d, ok, err)
	}

	// With retry exhausted before the server recovers, the error surfaces.
	ts2 := httptest.NewServer(flakyFront(inner, 100))
	t.Cleanup(ts2.Close)
	c2, err := client.New(ts2.URL, client.Options{
		MaxAttempts: 2,
		RetryBase:   time.Millisecond,
		RetryMax:    2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, _, err := c2.Lookup(0, 3); err == nil {
		t.Fatal("Lookup through always-503 server succeeded, want error after retries")
	}
}

func TestClientDoesNotRetryPermanentErrors(t *testing.T) {
	idx := testIndex(t, true)
	inner := server.New(idx, server.Config{}).Handler()
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/stats" {
			hits.Add(1)
			w.WriteHeader(http.StatusBadRequest)
			w.Write([]byte(`{"error":"no"}`))
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	c, err := client.New(ts.URL, client.Options{MaxAttempts: 5, RetryBase: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Lookup(0, 3); err == nil {
		t.Fatal("Lookup = nil error, want the 400 reported")
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("client sent %d requests for a permanent error, want 1", got)
	}
}

func TestClientMultiEndpointFailover(t *testing.T) {
	idx := testIndex(t, true)
	good := httptest.NewServer(server.New(idx, server.Config{}).Handler())
	t.Cleanup(good.Close)
	// A dead endpoint first: the handshake and every query must fail
	// over to the good one.
	c, err := client.NewMulti([]string{"http://127.0.0.1:1", good.URL}, client.Options{
		MaxAttempts: 3,
		RetryBase:   time.Millisecond,
		RetryMax:    2 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewMulti with one dead endpoint: %v", err)
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		d, ok, err := c.Lookup(0, 3)
		if err != nil || !ok || d != 3 {
			t.Fatalf("Lookup after failover = (%d,%v,%v), want (3,true,nil)", d, ok, err)
		}
	}
	if n := c.N(); n != 6 {
		t.Fatalf("N() = %d, want 6", n)
	}
}

func TestClientMinSeqHeader(t *testing.T) {
	idx := testIndex(t, true)
	inner := server.New(idx, server.Config{}).Handler()
	var gotMinSeq atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/distance" {
			gotMinSeq.Store(r.Header.Get("X-Hopdb-Min-Seq"))
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	c, err := client.New(ts.URL, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetMinSeq(7)
	// The read-only test server cannot satisfy seq 7, so the query fails
	// after retries — but the header must have been sent.
	if _, _, err := c.Lookup(0, 3); err == nil {
		t.Fatal("Lookup with unsatisfiable min-seq succeeded, want 503 surfaced")
	}
	if got, _ := gotMinSeq.Load().(string); got != "7" {
		t.Fatalf("server saw min-seq %q, want \"7\"", got)
	}
	c.SetMinSeq(0)
	if d, ok, err := c.Lookup(0, 3); err != nil || !ok || d != 3 {
		t.Fatalf("Lookup after clearing min-seq = (%d,%v,%v), want (3,true,nil)", d, ok, err)
	}
}
