package client

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

// newBareClient builds a Client around ts without the NewMulti
// handshake, with the retry loop's clock and jitter source captured:
// every sleep is recorded instead of slept, and rnd is caller-chosen.
func newBareClient(ts *httptest.Server, attempts int, base, max time.Duration, rnd func(int64) int64) (*Client, *[]time.Duration) {
	slept := &[]time.Duration{}
	endpoint, httpc := "http://unused.invalid", http.DefaultClient
	if ts != nil {
		endpoint, httpc = ts.URL, ts.Client()
	}
	var mu sync.Mutex
	c := &Client{
		endpoints: []string{endpoint},
		httpc:     httpc,
		prefix:    "/v1",
		attempts:  attempts,
		retryBase: base,
		retryMax:  max,
		sleep: func(d time.Duration) {
			mu.Lock()
			*slept = append(*slept, d)
			mu.Unlock()
		},
		rnd: rnd,
	}
	c.bufPool.New = func() any { return new([]byte) }
	return c, slept
}

// TestBackoffBounds pins the backoff window arithmetic: exponential
// doubling from RetryBase, capped at RetryMax, with the jitter draw
// confined to the upper half [d/2, d] of the computed delay.
func TestBackoffBounds(t *testing.T) {
	const (
		base = 100 * time.Millisecond
		max  = 250 * time.Millisecond
	)
	// The uncapped delays are 100ms, 200ms, then the 250ms cap forever.
	wantDelay := []time.Duration{0, 100 * time.Millisecond, 200 * time.Millisecond, max, max, max}
	for a := 1; a <= 5; a++ {
		d := wantDelay[a]
		lo, _ := newBareClient(nil, 1, base, max, func(n int64) int64 { return 0 })
		hi, _ := newBareClient(nil, 1, base, max, func(n int64) int64 { return n - 1 })
		if got := lo.backoff(a); got != d/2 {
			t.Errorf("backoff(%d) with zero jitter = %v, want %v", a, got, d/2)
		}
		if got := hi.backoff(a); got != d {
			t.Errorf("backoff(%d) with max jitter = %v, want %v", a, got, d)
		}
	}
	// A shift past the cap (or into overflow) still lands on RetryMax.
	c, _ := newBareClient(nil, 1, base, max, func(n int64) int64 { return n - 1 })
	if got := c.backoff(63); got != max {
		t.Errorf("backoff(63) = %v, want the %v cap", got, max)
	}
}

// TestRetrySleepsAndStops drives a permanently-503 server: the client
// makes exactly MaxAttempts requests with the deterministic backoff
// sequence between them, reuses one request id across every attempt,
// and reports the terminal error.
func TestRetrySleepsAndStops(t *testing.T) {
	var (
		mu   sync.Mutex
		hits int
		ids  []string
	)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		hits++
		ids = append(ids, r.Header.Get(wire.HeaderRequestID))
		mu.Unlock()
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c, slept := newBareClient(ts, 4, 100*time.Millisecond, 250*time.Millisecond,
		func(n int64) int64 { return 0 })
	_, _, err := c.Lookup(0, 1)
	if err == nil || !strings.Contains(err.Error(), "4 attempts failed") {
		t.Fatalf("Lookup error = %v, want the 4-attempts-failed report", err)
	}
	if hits != 4 {
		t.Fatalf("server saw %d requests, want MaxAttempts=4", hits)
	}
	want := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond, 125 * time.Millisecond}
	if len(*slept) != len(want) {
		t.Fatalf("slept %v, want %v", *slept, want)
	}
	for i, d := range want {
		if (*slept)[i] != d {
			t.Fatalf("sleep %d = %v, want %v (zero-jitter floor)", i, (*slept)[i], d)
		}
	}
	if ids[0] == "" {
		t.Fatal("no request id sent")
	}
	for _, id := range ids {
		if id != ids[0] {
			t.Fatalf("request ids diverge across retries: %v", ids)
		}
	}
}

// TestNoRetryOnPermanentStatus pins that 4xx answers are reported
// immediately: one request, zero sleeps.
func TestNoRetryOnPermanentStatus(t *testing.T) {
	var hits int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		http.Error(w, `{"error":"bad pair"}`, http.StatusBadRequest)
	}))
	defer ts.Close()

	c, slept := newBareClient(ts, 5, time.Millisecond, time.Second,
		func(n int64) int64 { return 0 })
	_, _, err := c.Lookup(0, 1)
	if err == nil || !strings.Contains(err.Error(), "bad pair") {
		t.Fatalf("Lookup error = %v, want the server's message", err)
	}
	if hits != 1 {
		t.Fatalf("server saw %d requests, want exactly 1 (no retry on 4xx)", hits)
	}
	if len(*slept) != 0 {
		t.Fatalf("client slept %v on a permanent error", *slept)
	}
}
