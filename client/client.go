// Package client is the remote query backend: a hopdb.Querier that
// forwards distance queries to one or more hopdb-serve (or hopdb-router)
// instances over the versioned /v1 HTTP API, making a served index a
// drop-in replacement for a local one. Batches use the compact binary
// encoding by default (8 bytes per pair, zero reflection on either
// side); set Options.JSONBatch to force JSON.
//
// Resilience: transient failures — connection errors, 502/503/504 —
// retry with capped exponential backoff and jitter, rotating across the
// configured endpoints, so one broken replica degrades latency instead
// of surfacing as a query error. Permanent failures (4xx, malformed
// responses) are reported immediately.
//
// The blessed way to construct one is hopdb.Open with WithRemote (one
// endpoint) or WithRemotes (a replica fleet):
//
//	q, err := hopdb.Open("", hopdb.WithRemote("http://host:8080"))
//	q, err := hopdb.Open("", hopdb.WithRemotes("http://a:8080", "http://b:8080"))
//
// which returns a *Client. Use New/NewMulti directly when the extra
// error-reporting methods (Lookup, Batch, ServerStats) are wanted
// without a type assertion.
//
// Read-your-writes: after a write at the primary (the seq field of the
// update response), SetMinSeq makes every subsequent query demand that
// sequence via the X-Hopdb-Min-Seq header; a replica still behind it
// answers 503, which the retry loop treats as transient — so the query
// lands on a caught-up replica or fails only after the backoff budget.
//
// A Client is safe for concurrent use.
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/httpmw"
	"repro/internal/wire"
)

// QueryPair is one (source, target) distance request; identical to
// hopdb.QueryPair.
type QueryPair = wire.QueryPair

// Infinity is the distance reported for unreachable pairs; identical to
// hopdb.Infinity.
const Infinity = wire.Infinity

// Retry defaults; see Options.
const (
	DefaultMaxAttempts = 3
	DefaultRetryBase   = 25 * time.Millisecond
	DefaultRetryMax    = 1 * time.Second
)

// Options tunes a Client.
type Options struct {
	// HTTPClient overrides the http.Client used for requests. The
	// default has a 30 second timeout and pools connections per host.
	HTTPClient *http.Client
	// JSONBatch sends /v1/batch requests JSON-encoded instead of using
	// the compact binary encoding (for debugging, or intermediaries that
	// only pass JSON through).
	JSONBatch bool
	// MaxAttempts bounds how many times one logical request is tried
	// across transient failures (connection errors, 502/503/504),
	// rotating endpoints between attempts. 0 selects
	// DefaultMaxAttempts; 1 disables retry.
	MaxAttempts int
	// RetryBase is the backoff before the second attempt; it doubles
	// per attempt, capped at RetryMax, with jitter in [1/2, 1) of the
	// computed delay. Zeros select DefaultRetryBase/DefaultRetryMax.
	RetryBase time.Duration
	RetryMax  time.Duration
	// Dataset selects a named dataset on a multi-tenant server: requests
	// go to /v1/{dataset}/* instead of the flat /v1/* routes. Empty
	// queries the default dataset over the flat routes (compatible with
	// pre-multi-tenant servers).
	Dataset string
	// Token is the bearer token sent as "Authorization: Bearer ..." on
	// every request (for servers running with a token file or admin
	// token). Empty sends no Authorization header.
	Token string
}

// Client answers distance queries by calling hopdb-serve instances.
type Client struct {
	endpoints []string
	cur       atomic.Int32 // index of the endpoint new requests prefer
	httpc     *http.Client
	prefix    string // "/v1" or "/v1/{dataset}"
	token     string
	json      bool
	attempts  int
	retryBase time.Duration
	retryMax  time.Duration
	minSeq    atomic.Int64

	// sleep and rnd are the retry loop's clock and jitter source,
	// swappable so tests pin backoff behavior without real sleeping.
	sleep func(time.Duration)
	rnd   func(n int64) int64 // uniform in [0, n)

	// handshake is the /v1/stats snapshot taken by New: it pins the
	// vertex count and directedness the Querier contract reports even
	// when the servers are briefly unreachable later.
	handshake wire.StatsResult

	// bufPool recycles binary batch request bodies so steady-state
	// batching does not allocate per request.
	bufPool sync.Pool
}

// New connects to a single hopdb-serve instance at baseURL (e.g.
// "http://127.0.0.1:8080") and verifies it by fetching /v1/stats. The
// returned Client implements hopdb.Querier and hopdb.Pather.
func New(baseURL string, opt Options) (*Client, error) {
	return NewMulti([]string{baseURL}, opt)
}

// NewMulti connects to a fleet of equivalent servers (replicas of the
// same index, or routers in front of one). Requests prefer one endpoint
// at a time and fail over to the next on transient errors; the handshake
// succeeds if any endpoint answers.
func NewMulti(urls []string, opt Options) (*Client, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("client: no endpoints given")
	}
	endpoints := make([]string, len(urls))
	for i, raw := range urls {
		u, err := url.Parse(raw)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("client: invalid server URL %q", raw)
		}
		endpoints[i] = strings.TrimRight(raw, "/")
	}
	httpc := opt.HTTPClient
	if httpc == nil {
		httpc = &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConnsPerHost: 16,
			},
		}
	}
	attempts := opt.MaxAttempts
	if attempts <= 0 {
		attempts = DefaultMaxAttempts
	}
	base, max := opt.RetryBase, opt.RetryMax
	if base <= 0 {
		base = DefaultRetryBase
	}
	if max <= 0 {
		max = DefaultRetryMax
	}
	prefix := "/v1"
	if opt.Dataset != "" {
		if err := wire.ValidateDatasetName(opt.Dataset); err != nil {
			return nil, fmt.Errorf("client: %w", err)
		}
		prefix = "/v1/" + opt.Dataset
	}
	c := &Client{
		endpoints: endpoints,
		httpc:     httpc,
		prefix:    prefix,
		token:     opt.Token,
		json:      opt.JSONBatch,
		attempts:  attempts,
		retryBase: base,
		retryMax:  max,
		sleep:     time.Sleep,
		rnd:       rand.Int63n,
	}
	c.bufPool.New = func() any { return new([]byte) }
	st, err := c.ServerStats()
	if err != nil {
		return nil, fmt.Errorf("client: handshake failed: %w", err)
	}
	c.handshake = st
	return c, nil
}

// SetMinSeq demands read-your-writes freshness: every subsequent query
// carries X-Hopdb-Min-Seq, so replicas still behind seq answer 503 and
// the retry loop moves on to a caught-up one. Use the seq field of the
// admin update response (or Seq of a local Replicator). Zero clears the
// demand. Monotonic use is the caller's business: SetMinSeq overwrites.
func (c *Client) SetMinSeq(seq int64) { c.minSeq.Store(seq) }

// MinSeq returns the current read-your-writes demand (zero when none).
func (c *Client) MinSeq() int64 { return c.minSeq.Load() }

// backoff computes the sleep before attempt a (a >= 1): exponential from
// retryBase, capped at retryMax, with jitter drawn uniformly from the
// upper half of the window so synchronized clients spread out.
func (c *Client) backoff(a int) time.Duration {
	d := c.retryBase << (a - 1)
	if d > c.retryMax || d <= 0 {
		d = c.retryMax
	}
	half := int64(d) / 2
	return time.Duration(half + c.rnd(half+1))
}

// advance rotates the preferred endpoint away from the one that just
// failed (CAS so concurrent failures rotate once, not once each).
func (c *Client) advance(from int32) {
	c.cur.CompareAndSwap(from, (from+1)%int32(len(c.endpoints)))
}

// do performs one logical request with retry and endpoint failover:
// method + path (with query) against the preferred endpoint, resending
// body each attempt. Transient failures rotate endpoints and back off;
// the caller owns the returned response body. contentType is set when
// body != nil.
func (c *Client) do(method, path, contentType string, body []byte) (*http.Response, error) {
	// One id per logical request, reused across retries, so every attempt
	// of the same query correlates in every tier's access log.
	reqID := httpmw.NewRequestID()
	var lastErr error
	for a := 0; a < c.attempts; a++ {
		if a > 0 {
			c.sleep(c.backoff(a))
		}
		cur := c.cur.Load()
		base := c.endpoints[int(cur)%len(c.endpoints)]
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, base+path, rd)
		if err != nil {
			return nil, err
		}
		req.Header.Set(wire.HeaderRequestID, reqID)
		if c.token != "" {
			req.Header.Set("Authorization", "Bearer "+c.token)
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		if min := c.minSeq.Load(); min > 0 {
			req.Header.Set(wire.HeaderMinSeq, strconv.FormatInt(min, 10))
		}
		resp, err := c.httpc.Do(req)
		if err != nil {
			lastErr = err
			c.advance(cur)
			continue
		}
		if wire.TransientStatus(resp.StatusCode) {
			lastErr = httpError(resp)
			drain(resp)
			c.advance(cur)
			continue
		}
		return resp, nil
	}
	return nil, fmt.Errorf("client: %d attempts failed: %w", c.attempts, lastErr)
}

// Lookup answers one pair with full error reporting: the distance,
// whether t is reachable from s, and any transport or server error.
func (c *Client) Lookup(s, t int32) (uint32, bool, error) {
	var res wire.DistanceResult
	if err := c.getJSON(fmt.Sprintf("%s/distance?s=%d&t=%d", c.prefix, s, t), &res); err != nil {
		return Infinity, false, err
	}
	if !res.Reachable || res.Distance == nil {
		return Infinity, false, nil
	}
	return *res.Distance, true, nil
}

// Distance implements hopdb.Querier. Transport errors are reported as
// unreachable (Infinity, false); use Lookup to distinguish them.
func (c *Client) Distance(s, t int32) (uint32, bool) {
	d, ok, _ := c.Lookup(s, t)
	return d, ok
}

// Batch answers many pairs in one round trip; results[i] answers
// pairs[i], with Infinity for unreachable pairs.
func (c *Client) Batch(pairs []QueryPair) ([]uint32, error) {
	return c.BatchInto(make([]uint32, len(pairs)), pairs)
}

// BatchInto is Batch writing into a caller-provided results slice
// (len(results) must be >= len(pairs)), recycling buffers across calls.
func (c *Client) BatchInto(results []uint32, pairs []QueryPair) ([]uint32, error) {
	results = results[:len(pairs)]
	if len(pairs) == 0 {
		return results, nil
	}
	if c.json {
		return c.batchJSON(results, pairs)
	}
	return c.batchBinary(results, pairs)
}

func (c *Client) batchBinary(results []uint32, pairs []QueryPair) ([]uint32, error) {
	bufp := c.bufPool.Get().(*[]byte)
	defer c.bufPool.Put(bufp)
	*bufp = wire.AppendBatchRequest((*bufp)[:0], pairs)
	resp, err := c.do(http.MethodPost, c.prefix+"/batch", wire.ContentTypeBinaryBatch, *bufp)
	if err != nil {
		return nil, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(resp)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	out, err := wire.DecodeBatchResponse(results, body)
	if err != nil {
		return nil, err
	}
	if len(out) != len(pairs) {
		return nil, fmt.Errorf("client: batch answered %d results for %d pairs", len(out), len(pairs))
	}
	return out, nil
}

func (c *Client) batchJSON(results []uint32, pairs []QueryPair) ([]uint32, error) {
	arr := make([][2]int32, len(pairs))
	for i, p := range pairs {
		arr[i] = [2]int32{p.S, p.T}
	}
	body, err := json.Marshal(arr)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(http.MethodPost, c.prefix+"/batch", "application/json", body)
	if err != nil {
		return nil, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(resp)
	}
	var br wire.BatchResult
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return nil, err
	}
	if len(br.Results) != len(pairs) {
		return nil, fmt.Errorf("client: batch answered %d results for %d pairs", len(br.Results), len(pairs))
	}
	for i, r := range br.Results {
		if r.Reachable && r.Distance != nil {
			results[i] = *r.Distance
		} else {
			results[i] = Infinity
		}
	}
	return results, nil
}

// DistanceBatchInto implements hopdb.Querier. The whole batch travels in
// one request — the server fans it out across its own worker pool — so
// workers is ignored. A failed request answers Infinity for every pair;
// use BatchInto or LookupBatchInto to observe the error instead.
func (c *Client) DistanceBatchInto(results []uint32, pairs []QueryPair, workers int) []uint32 {
	out, err := c.BatchInto(results, pairs)
	if err != nil {
		out = results[:len(pairs)]
		for i := range out {
			out[i] = Infinity
		}
	}
	return out
}

// LookupBatchInto implements hopdb.LookupBatcher: BatchInto with the
// (ignored) workers parameter of the batch contract, reporting transport
// and server errors instead of swallowing them.
func (c *Client) LookupBatchInto(results []uint32, pairs []QueryPair, workers int) ([]uint32, error) {
	return c.BatchInto(results, pairs)
}

// Path asks the server to reconstruct one shortest path. It returns
// hopdb.ErrNoGraph when the server has no graph attached and
// hopdb.ErrUnreachable when no path exists, so callers handle local and
// remote backends with the same errors.Is checks.
func (c *Client) Path(s, t int32) ([]int32, error) {
	resp, err := c.do(http.MethodGet, fmt.Sprintf("%s/path?s=%d&t=%d", c.prefix, s, t), "", nil)
	if err != nil {
		return nil, err
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		var pr wire.PathResult
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			return nil, err
		}
		return pr.Path, nil
	case http.StatusNotImplemented:
		return nil, wire.ErrNoGraph
	case http.StatusNotFound:
		return nil, wire.ErrUnreachable
	default:
		return nil, httpError(resp)
	}
}

// ServerStats fetches the preferred server's live /v1/stats snapshot:
// serving backend kind, uptime, query counters, and cache effectiveness.
func (c *Client) ServerStats() (wire.StatsResult, error) {
	var st wire.StatsResult
	err := c.getJSON(c.prefix+"/stats", &st)
	return st, err
}

// N implements hopdb.Querier with the vertex count pinned at handshake.
func (c *Client) N() int32 { return c.handshake.Vertices }

// Stats implements hopdb.Querier from the handshake snapshot — a cheap
// accessor, never a network round trip (the described fields are fixed
// for the lifetime of the server's index). Use ServerStats for live
// serving counters.
func (c *Client) Stats() wire.QuerierStats {
	st := c.handshake
	return wire.QuerierStats{
		Backend:     wire.BackendRemote,
		Kernel:      wire.Kernel(st.Kernel),
		Directed:    st.Directed,
		Vertices:    st.Vertices,
		Entries:     st.Entries,
		SizeBytes:   st.SizeBytes,
		BitParallel: st.BitParallel,
	}
}

// Close releases pooled connections. The Client must not be used
// afterwards.
func (c *Client) Close() error {
	c.httpc.CloseIdleConnections()
	return nil
}

// getJSON fetches path and decodes a JSON 200 response into v.
func (c *Client) getJSON(path string, v any) error {
	resp, err := c.do(http.MethodGet, path, "", nil)
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return httpError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// httpError turns a non-200 response into an error carrying the server's
// {"error": ...} message when present.
func httpError(resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	if json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&e) == nil && e.Error != "" {
		return fmt.Errorf("client: server returned %s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("client: server returned %s", resp.Status)
}

// drain consumes and closes the response body so the connection is
// reusable.
func drain(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
