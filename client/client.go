// Package client is the remote query backend: a hopdb.Querier that
// forwards distance queries to a hopdb-serve instance over its versioned
// /v1 HTTP API, making a served index a drop-in replacement for a local
// one. Batches use the compact binary encoding by default (8 bytes per
// pair, zero reflection on either side); set Options.JSONBatch to force
// JSON.
//
// The blessed way to construct one is hopdb.Open with WithRemote:
//
//	q, err := hopdb.Open("", hopdb.WithRemote("http://host:8080"))
//
// which returns a *Client. Use New directly when the extra error-
// reporting methods (Lookup, Batch, ServerStats) are wanted without a
// type assertion.
//
// A Client is safe for concurrent use.
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/wire"
)

// QueryPair is one (source, target) distance request; identical to
// hopdb.QueryPair.
type QueryPair = wire.QueryPair

// Infinity is the distance reported for unreachable pairs; identical to
// hopdb.Infinity.
const Infinity = wire.Infinity

// Options tunes a Client.
type Options struct {
	// HTTPClient overrides the http.Client used for requests. The
	// default has a 30 second timeout and pools connections per host.
	HTTPClient *http.Client
	// JSONBatch sends /v1/batch requests JSON-encoded instead of using
	// the compact binary encoding (for debugging, or intermediaries that
	// only pass JSON through).
	JSONBatch bool
}

// Client answers distance queries by calling a hopdb-serve instance.
type Client struct {
	base  string
	httpc *http.Client
	json  bool

	// handshake is the /v1/stats snapshot taken by New: it pins the
	// vertex count and directedness the Querier contract reports even
	// when the server is briefly unreachable later.
	handshake wire.StatsResult

	// bufPool recycles binary batch request bodies so steady-state
	// batching does not allocate per request.
	bufPool sync.Pool
}

// New connects to a hopdb-serve instance at baseURL (e.g.
// "http://127.0.0.1:8080") and verifies it by fetching /v1/stats. The
// returned Client implements hopdb.Querier and hopdb.Pather.
func New(baseURL string, opt Options) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: invalid server URL %q", baseURL)
	}
	httpc := opt.HTTPClient
	if httpc == nil {
		httpc = &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConnsPerHost: 16,
			},
		}
	}
	c := &Client{
		base:  strings.TrimRight(baseURL, "/"),
		httpc: httpc,
		json:  opt.JSONBatch,
	}
	c.bufPool.New = func() any { return new([]byte) }
	st, err := c.ServerStats()
	if err != nil {
		return nil, fmt.Errorf("client: handshake with %s failed: %w", c.base, err)
	}
	c.handshake = st
	return c, nil
}

// Lookup answers one pair with full error reporting: the distance,
// whether t is reachable from s, and any transport or server error.
func (c *Client) Lookup(s, t int32) (uint32, bool, error) {
	var res wire.DistanceResult
	if err := c.getJSON(fmt.Sprintf("%s/v1/distance?s=%d&t=%d", c.base, s, t), &res); err != nil {
		return Infinity, false, err
	}
	if !res.Reachable || res.Distance == nil {
		return Infinity, false, nil
	}
	return *res.Distance, true, nil
}

// Distance implements hopdb.Querier. Transport errors are reported as
// unreachable (Infinity, false); use Lookup to distinguish them.
func (c *Client) Distance(s, t int32) (uint32, bool) {
	d, ok, _ := c.Lookup(s, t)
	return d, ok
}

// Batch answers many pairs in one round trip; results[i] answers
// pairs[i], with Infinity for unreachable pairs.
func (c *Client) Batch(pairs []QueryPair) ([]uint32, error) {
	return c.BatchInto(make([]uint32, len(pairs)), pairs)
}

// BatchInto is Batch writing into a caller-provided results slice
// (len(results) must be >= len(pairs)), recycling buffers across calls.
func (c *Client) BatchInto(results []uint32, pairs []QueryPair) ([]uint32, error) {
	results = results[:len(pairs)]
	if len(pairs) == 0 {
		return results, nil
	}
	if c.json {
		return c.batchJSON(results, pairs)
	}
	return c.batchBinary(results, pairs)
}

func (c *Client) batchBinary(results []uint32, pairs []QueryPair) ([]uint32, error) {
	bufp := c.bufPool.Get().(*[]byte)
	defer c.bufPool.Put(bufp)
	*bufp = wire.AppendBatchRequest((*bufp)[:0], pairs)
	resp, err := c.httpc.Post(c.base+"/v1/batch", wire.ContentTypeBinaryBatch, bytes.NewReader(*bufp))
	if err != nil {
		return nil, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(resp)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	out, err := wire.DecodeBatchResponse(results, body)
	if err != nil {
		return nil, err
	}
	if len(out) != len(pairs) {
		return nil, fmt.Errorf("client: batch answered %d results for %d pairs", len(out), len(pairs))
	}
	return out, nil
}

func (c *Client) batchJSON(results []uint32, pairs []QueryPair) ([]uint32, error) {
	arr := make([][2]int32, len(pairs))
	for i, p := range pairs {
		arr[i] = [2]int32{p.S, p.T}
	}
	body, err := json.Marshal(arr)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpc.Post(c.base+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(resp)
	}
	var br wire.BatchResult
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return nil, err
	}
	if len(br.Results) != len(pairs) {
		return nil, fmt.Errorf("client: batch answered %d results for %d pairs", len(br.Results), len(pairs))
	}
	for i, r := range br.Results {
		if r.Reachable && r.Distance != nil {
			results[i] = *r.Distance
		} else {
			results[i] = Infinity
		}
	}
	return results, nil
}

// DistanceBatchInto implements hopdb.Querier. The whole batch travels in
// one request — the server fans it out across its own worker pool — so
// workers is ignored. A failed request answers Infinity for every pair;
// use BatchInto or LookupBatchInto to observe the error instead.
func (c *Client) DistanceBatchInto(results []uint32, pairs []QueryPair, workers int) []uint32 {
	out, err := c.BatchInto(results, pairs)
	if err != nil {
		out = results[:len(pairs)]
		for i := range out {
			out[i] = Infinity
		}
	}
	return out
}

// LookupBatchInto implements hopdb.LookupBatcher: BatchInto with the
// (ignored) workers parameter of the batch contract, reporting transport
// and server errors instead of swallowing them.
func (c *Client) LookupBatchInto(results []uint32, pairs []QueryPair, workers int) ([]uint32, error) {
	return c.BatchInto(results, pairs)
}

// Path asks the server to reconstruct one shortest path. It returns
// hopdb.ErrNoGraph when the server has no graph attached and
// hopdb.ErrUnreachable when no path exists, so callers handle local and
// remote backends with the same errors.Is checks.
func (c *Client) Path(s, t int32) ([]int32, error) {
	resp, err := c.httpc.Get(fmt.Sprintf("%s/v1/path?s=%d&t=%d", c.base, s, t))
	if err != nil {
		return nil, err
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		var pr wire.PathResult
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			return nil, err
		}
		return pr.Path, nil
	case http.StatusNotImplemented:
		return nil, wire.ErrNoGraph
	case http.StatusNotFound:
		return nil, wire.ErrUnreachable
	default:
		return nil, httpError(resp)
	}
}

// ServerStats fetches the server's live /v1/stats snapshot: serving
// backend kind, uptime, query counters, and cache effectiveness.
func (c *Client) ServerStats() (wire.StatsResult, error) {
	var st wire.StatsResult
	err := c.getJSON(c.base+"/v1/stats", &st)
	return st, err
}

// N implements hopdb.Querier with the vertex count pinned at handshake.
func (c *Client) N() int32 { return c.handshake.Vertices }

// Stats implements hopdb.Querier from the handshake snapshot — a cheap
// accessor, never a network round trip (the described fields are fixed
// for the lifetime of the server's index). Use ServerStats for live
// serving counters.
func (c *Client) Stats() wire.QuerierStats {
	st := c.handshake
	return wire.QuerierStats{
		Backend:     wire.BackendRemote,
		Directed:    st.Directed,
		Vertices:    st.Vertices,
		Entries:     st.Entries,
		SizeBytes:   st.SizeBytes,
		BitParallel: st.BitParallel,
	}
}

// Close releases pooled connections. The Client must not be used
// afterwards.
func (c *Client) Close() error {
	c.httpc.CloseIdleConnections()
	return nil
}

// getJSON fetches url and decodes a JSON 200 response into v.
func (c *Client) getJSON(url string, v any) error {
	resp, err := c.httpc.Get(url)
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return httpError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// httpError turns a non-200 response into an error carrying the server's
// {"error": ...} message when present.
func httpError(resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	if json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&e) == nil && e.Error != "" {
		return fmt.Errorf("client: server returned %s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("client: server returned %s", resp.Status)
}

// drain consumes and closes the response body so the connection is
// reusable.
func drain(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
