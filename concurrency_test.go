package hopdb

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/gen"
)

// TestDistanceConcurrentWithEnableBitParallel hammers Distance from many
// goroutines while the bit-parallel transform runs and is published
// mid-flight. Under -race this verifies the Index concurrency contract:
// queries observe either the plain merge-join or the (atomically stored)
// bit-parallel path, and both return the same exact distances.
func TestDistanceConcurrentWithEnableBitParallel(t *testing.T) {
	g, err := gen.GLP(gen.DefaultGLP(600, 4, 11))
	if err != nil {
		t.Fatal(err)
	}
	idx, _, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Ground truth from the plain index, before any goroutines start.
	type pair struct{ s, t int32 }
	var pairs []pair
	var want []uint32
	for s := int32(0); s < g.N(); s += 13 {
		for u := int32(0); u < g.N(); u += 29 {
			d, _ := idx.Distance(s, u)
			pairs = append(pairs, pair{s, u})
			want = append(want, d)
		}
	}

	const workers = 8
	var (
		wg       sync.WaitGroup
		start    = make(chan struct{})
		mismatch atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for rep := 0; rep < 40; rep++ {
				for i := range pairs {
					d, _ := idx.Distance(pairs[i].s, pairs[i].t)
					if d != want[i] {
						mismatch.Add(1)
						return
					}
				}
			}
		}(w)
	}
	close(start)
	// Publish the bit-parallel index while the workers are querying.
	if err := idx.EnableBitParallel(16); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if n := mismatch.Load(); n != 0 {
		t.Fatalf("%d queries changed answers while bit-parallel was enabled", n)
	}
	// After the fence, queries must actually use the bit-parallel path.
	if idx.bp.Load() == nil {
		t.Fatal("bit-parallel index not published")
	}
	for i := range pairs {
		if d, _ := idx.Distance(pairs[i].s, pairs[i].t); d != want[i] {
			t.Fatalf("bit-parallel Distance(%d,%d) = %d, want %d", pairs[i].s, pairs[i].t, d, want[i])
		}
	}
}

// TestDistanceBatchConcurrentCallers runs overlapping DistanceBatch calls
// from several goroutines (each with its own internal worker fan-out) to
// check the batch path is free of shared mutable state under -race.
func TestDistanceBatchConcurrentCallers(t *testing.T) {
	g, err := gen.GLP(gen.DefaultGLP(400, 3, 5))
	if err != nil {
		t.Fatal(err)
	}
	idx, _, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pairs := make([]QueryPair, 0, 256)
	for s := int32(0); s < g.N(); s += 7 {
		for u := int32(0); u < g.N(); u += 23 {
			pairs = append(pairs, QueryPair{S: s, T: u})
		}
	}
	want := idx.DistanceBatch(pairs, 1)
	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := idx.DistanceBatch(pairs, 4)
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("batch result %d = %d, want %d", i, got[i], want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
}
