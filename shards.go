package hopdb

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/shard"
)

// ShardConfig configures BuildShards.
type ShardConfig struct {
	// Shards is the number of leaf shards (>= 1).
	Shards int
	// HubRanks is the hub tier size in ranks; 0 selects the default
	// rule (ceil(sqrt(n)), see internal/shard.DefaultHubRanks).
	HubRanks int32
	// Dir is the output directory for the shard files and shard.json.
	Dir string
}

// BuildShards builds the index for g with the external-memory pipeline
// and partitions it by contiguous rank ranges into cfg.Shards leaf
// shard files plus a replicated hub shard holding the top-rank tier,
// all written under cfg.Dir together with the shard.json map. The full
// index is never materialized in RAM: labels stream from the external
// builder's sorted record files straight into the shard files.
//
// Serve each leaf file with hopdb-serve -shard, and point hopdb-router
// -shard-map at shard.json for scatter-gather routing.
func BuildShards(g *Graph, opt Options, cfg ShardConfig) (*shard.Map, Stats, error) {
	if opt.CheckpointDir != "" || opt.Resume {
		return nil, Stats{}, fmt.Errorf("hopdb: BuildShards: checkpointing is in-memory-builder only")
	}
	var m *shard.Map
	st, err := core.BuildExternalStream(g, coreOptions(opt), func(lf *core.LabelFiles) error {
		var werr error
		m, werr = shard.WriteShards(lf, shard.BuildConfig{
			Shards:   cfg.Shards,
			HubRanks: cfg.HubRanks,
			Dir:      cfg.Dir,
		})
		return werr
	})
	if err != nil {
		return nil, Stats{}, err
	}
	return m, st, nil
}

// OpenShard opens one rank-shard file written by BuildShards (or
// hopdb-build -shards) as a Querier serving only its rank range: pairs
// whose ranks it owns answer exactly like the full index, and the rest
// are routing errors surfaced through the Lookuper extension. The
// backend kind is BackendShard.
func OpenShard(path string) (Querier, error) {
	s, err := shard.Load(path)
	if err != nil {
		return nil, err
	}
	return s, nil
}
