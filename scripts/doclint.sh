#!/usr/bin/env bash
# doclint: every shippable package must carry a package comment.
#
# The package comment is the one-paragraph contract a reader gets from
# `go doc` before any identifier — packages without one force readers to
# reverse-engineer intent from code. This gate covers the root package
# and everything under internal/ (test-only files excluded); cmd/ mains
# and the public client are linted too since they ship.
# Run from anywhere; CI runs it in the lint job.
set -euo pipefail
cd "$(dirname "$0")/.."

# has_pkg_comment FILE: true when FILE opens with a doc comment attached
# to its package clause (comment block immediately above `package X`,
# no blank line between; //go:build lines don't count).
has_pkg_comment() {
  awk '
    /^package /   { exit found ? 0 : 1 }
    /^\/\/go:build/ { next }
    /^\/\*/       { found = 1; next }
    /^\/\//       { found = 1; next }
    /^$/          { found = 0 }
                  { found = 0 }
  ' "$1"
}

missing=""
for dir in $(go list -f '{{.Dir}}' ./...); do
  rel=${dir#"$PWD"}
  rel=${rel#/}
  [ -n "$rel" ] || rel=.
  found=""
  for f in "$dir"/*.go; do
    [ -e "$f" ] || continue
    case "$f" in *_test.go) continue ;; esac
    if has_pkg_comment "$f"; then
      found=1
      break
    fi
  done
  [ -n "$found" ] || missing="$missing $rel"
done

if [ -n "$missing" ]; then
  echo "doclint: packages missing a package comment:" >&2
  for p in $missing; do echo "  $p" >&2; done
  exit 1
fi
echo "doclint OK: every package documents itself"
