#!/usr/bin/env bash
# End-to-end serving smoke test: generate a synthetic graph, build its
# index in both formats, start hopdb-serve (heap, then -disk), and check
# that /v1/distance and /v1/batch answer exactly what hopdb-query answers
# on the same index — and that the legacy unversioned routes alias /v1.
# Then the cluster stage: a primary + two pull replicas behind
# hopdb-router, an update applied through the router's admin proxy,
# replication convergence, read-your-writes through the router, and a
# replica kill mid-serving with zero failed queries.
# Then the shard stage: the same graph cut into 4 rank shards plus a
# hub tier, each leaf served by hopdb-serve -shard, the router
# scatter-gathering with the hub router-resident — answers diffed
# byte-for-byte against hopdb-query, per-leaf resident bytes bounded
# by 1/N of the index plus the hub, and a shard-replica kill mid-storm.
# Run from the repo root (CI runs it as a dedicated job); needs curl.
set -euo pipefail

PORT="${SMOKE_PORT:-18357}"
BASE="http://127.0.0.1:$PORT"
tmp=$(mktemp -d)
pid=""
pids=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  for p in $pids; do kill "$p" 2>/dev/null || true; done
  rm -rf "$tmp"
}
trap cleanup EXIT

wait_healthy() {
  for _ in $(seq 1 50); do
    curl -fsS "$BASE/v1/healthz" >/dev/null 2>&1 && return 0
    kill -0 "$pid" 2>/dev/null || { echo "hopdb-serve died during startup" >&2; return 1; }
    sleep 0.2
  done
  curl -fsS "$BASE/v1/healthz" >/dev/null
}

# wait_healthy_at <base-url> <pid>
wait_healthy_at() {
  for _ in $(seq 1 50); do
    curl -fsS "$1/v1/healthz" >/dev/null 2>&1 && return 0
    kill -0 "$2" 2>/dev/null || { echo "server at $1 died during startup" >&2; return 1; }
    sleep 0.2
  done
  curl -fsS "$1/v1/healthz" >/dev/null
}

echo "== building binaries"
go build -o "$tmp/bin/" ./cmd/...

echo "== generating and indexing a synthetic graph"
"$tmp/bin/hopdb-gen" -model glp -n 500 -density 4 -seed 7 -o "$tmp/g.txt"
"$tmp/bin/hopdb-build" -in "$tmp/g.txt" -o "$tmp/g.idx" -disk "$tmp/g.didx"

echo "== parallel build matches the serial build byte-for-byte"
"$tmp/bin/hopdb-gen" -model glp -n 20000 -density 4 -seed 23 -o "$tmp/big.txt"
"$tmp/bin/hopdb-build" -in "$tmp/big.txt" -j 1 -o "$tmp/big_serial.idx"
"$tmp/bin/hopdb-build" -in "$tmp/big.txt" -j 4 -o "$tmp/big_parallel.idx"
cmp "$tmp/big_serial.idx" "$tmp/big_parallel.idx" \
  || { echo "parallel build diverges from serial" >&2; exit 1; }

echo "== killing a checkpointed build mid-flight and resuming it"
"$tmp/bin/hopdb-build" -in "$tmp/big.txt" -j 4 -checkpoint "$tmp/ck" -o "$tmp/big_resumed.idx" &
bpid=$!
# Kill as soon as the first iteration checkpoint lands. If the build
# outruns the poll and finishes, the resume below replays a done
# checkpoint — the byte-identity check holds either way.
for _ in $(seq 1 400); do
  [ -f "$tmp/ck/manifest.json" ] && break
  kill -0 "$bpid" 2>/dev/null || break
  sleep 0.05
done
kill -9 "$bpid" 2>/dev/null || true
wait "$bpid" 2>/dev/null || true
[ -f "$tmp/ck/manifest.json" ] || { echo "build died before writing any checkpoint" >&2; exit 1; }
rm -f "$tmp/big_resumed.idx"
"$tmp/bin/hopdb-build" -in "$tmp/big.txt" -j 4 -checkpoint "$tmp/ck" -resume \
  -o "$tmp/big_resumed.idx" 2>"$tmp/resume.err"
grep -Eq '^(resumed:|built:)' "$tmp/resume.err" \
  || { echo "resume produced no build summary: $(cat "$tmp/resume.err")" >&2; exit 1; }
cmp "$tmp/big_serial.idx" "$tmp/big_resumed.idx" \
  || { echo "killed-and-resumed build diverges from the uninterrupted build" >&2; exit 1; }

echo "== starting hopdb-serve on $BASE"
"$tmp/bin/hopdb-serve" -idx "$tmp/g.idx" -addr "127.0.0.1:$PORT" -cache 1000 &
pid=$!
wait_healthy

echo "== querying the same pairs through hopdb-query and the server"
# Deterministic pair list covering in-range, s==t, and out-of-range ids.
awk 'BEGIN { for (i = 0; i < 60; i++) print (i * 37) % 500, (i * 91 + 13) % 500; print 3, 3; print 0, 9999 }' >"$tmp/pairs.txt"
# Exit 1 just flags that some pair was unreachable (0 9999 is); any other
# nonzero status is a real failure.
"$tmp/bin/hopdb-query" -idx "$tmp/g.idx" -q "$tmp/pairs.txt" >"$tmp/cli.txt" 2>"$tmp/cli.err" || [ $? -eq 1 ]
# A heap-opened unweighted index must auto-engage the compact kernel;
# the summary line names the kernel that actually served.
grep -q 'kernel=compact' "$tmp/cli.err" || { echo "hopdb-query did not engage the compact kernel: $(cat "$tmp/cli.err")" >&2; exit 1; }

# hopdb-query prints "s t d" or "s t unreachable"; render the JSON the
# server documents for the same answers.
awk '{
  if ($3 == "unreachable") printf("{\"s\":%s,\"t\":%s,\"reachable\":false}\n", $1, $2);
  else printf("{\"s\":%s,\"t\":%s,\"distance\":%s,\"reachable\":true}\n", $1, $2, $3);
}' "$tmp/cli.txt" >"$tmp/expected.jsonl"

while read -r s t; do
  curl -fsS "$BASE/v1/distance?s=$s&t=$t"
done <"$tmp/pairs.txt" >"$tmp/served.jsonl"
diff -u "$tmp/expected.jsonl" "$tmp/served.jsonl" || { echo "/v1/distance answers diverge from hopdb-query" >&2; exit 1; }

echo "== checking the legacy route aliases /v1"
curl -fsS "$BASE/distance?s=3&t=9" >"$tmp/legacy.json"
curl -fsS "$BASE/v1/distance?s=3&t=9" >"$tmp/versioned.json"
diff -u "$tmp/legacy.json" "$tmp/versioned.json" || { echo "legacy /distance diverges from /v1/distance" >&2; exit 1; }

echo "== cross-checking POST /v1/batch"
awk 'BEGIN { printf("[") } { printf("%s[%s,%s]", NR == 1 ? "" : ",", $1, $2) } END { printf("]") }' "$tmp/pairs.txt" >"$tmp/batch.json"
printf '{"results":[%s]}\n' "$(paste -sd, "$tmp/expected.jsonl")" >"$tmp/expected_batch.json"
curl -fsS -X POST --data-binary @"$tmp/batch.json" "$BASE/v1/batch" >"$tmp/served_batch.json"
diff -u "$tmp/expected_batch.json" "$tmp/served_batch.json" || { echo "/v1/batch answers diverge from hopdb-query" >&2; exit 1; }

echo "== checking /v1/stats and oversized-batch rejection"
curl -fsS "$BASE/v1/stats" >"$tmp/stats.json"
grep -q '"backend":"heap"' "$tmp/stats.json" || { echo "/v1/stats missing backend kind" >&2; exit 1; }
grep -q '"kernel":"compact"' "$tmp/stats.json" || { echo "/v1/stats shows the fast kernel disengaged: $(cat "$tmp/stats.json")" >&2; exit 1; }
code=$(awk 'BEGIN { printf("["); for (i = 0; i < 10001; i++) printf("%s[1,2]", i ? "," : ""); printf("]") }' \
  | curl -s -o /dev/null -w '%{http_code}' -X POST --data-binary @- "$BASE/v1/batch")
[ "$code" = "413" ] || { echo "oversized batch returned $code, want 413" >&2; exit 1; }

echo "== graceful shutdown"
kill -TERM "$pid"
wait "$pid"
pid=""

echo "== serving the same graph straight from disk (-disk)"
"$tmp/bin/hopdb-serve" -disk "$tmp/g.didx" -disk-cache 512 -addr "127.0.0.1:$PORT" &
pid=$!
wait_healthy
curl -fsS "$BASE/v1/stats" | grep -q '"backend":"disk"' || { echo "disk /v1/stats missing backend kind" >&2; exit 1; }
while read -r s t; do
  curl -fsS "$BASE/v1/distance?s=$s&t=$t"
done <"$tmp/pairs.txt" >"$tmp/served_disk.jsonl"
diff -u "$tmp/expected.jsonl" "$tmp/served_disk.jsonl" || { echo "-disk answers diverge from hopdb-query" >&2; exit 1; }
kill -TERM "$pid"
wait "$pid"
pid=""

echo "== multi-tenant: two datasets, principal auth, hot attach"
"$tmp/bin/hopdb-gen" -model glp -n 200 -density 3 -seed 11 -o "$tmp/b.txt"
"$tmp/bin/hopdb-build" -in "$tmp/b.txt" -o "$tmp/b.idx"
cat >"$tmp/tokens.json" <<'EOF'
{"principals": [
  {"token": "t-alice", "name": "alice", "scopes": ["read"], "datasets": ["wiki"]},
  {"token": "t-ratey", "name": "ratey", "scopes": ["read"], "rate_qps": 1, "burst": 1},
  {"token": "t-ops", "name": "ops", "scopes": ["read", "write", "admin"]}
]}
EOF
"$tmp/bin/hopdb-serve" -dataset "wiki=$tmp/g.idx" -dataset "roads=$tmp/b.idx" \
  -token-file "$tmp/tokens.json" -addr "127.0.0.1:$PORT" &
pid=$!
wait_healthy

echo "== per-dataset routing answers from the right index"
curl -fsS -H "Authorization: Bearer t-alice" "$BASE/v1/wiki/distance?s=3&t=9" >"$tmp/mt_wiki.json"
diff -u "$tmp/versioned.json" "$tmp/mt_wiki.json" || { echo "/v1/wiki/distance diverges from the single-tenant answer" >&2; exit 1; }

echo "== cross-dataset token gets 403, full-scope token gets through"
code=$(curl -s -o /dev/null -w '%{http_code}' -H "Authorization: Bearer t-alice" "$BASE/v1/roads/distance?s=1&t=2")
[ "$code" = "403" ] || { echo "alice on roads returned $code, want 403" >&2; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' -H "Authorization: Bearer t-ops" "$BASE/v1/roads/distance?s=1&t=2")
[ "$code" = "200" ] || { echo "ops on roads returned $code, want 200" >&2; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/wiki/distance?s=3&t=9")
[ "$code" = "401" ] || { echo "tokenless query returned $code, want 401" >&2; exit 1; }

echo "== breaching a principal's rate limit sheds with 429"
codes=$(for _ in 1 2 3; do
  curl -s -o /dev/null -w '%{http_code} ' -H "Authorization: Bearer t-ratey" "$BASE/v1/wiki/distance?s=3&t=9"
done)
case "$codes" in
  *429*) ;;
  *) echo "rate breach codes were '$codes', want a 429" >&2; exit 1 ;;
esac

echo "== hot-attaching a third dataset while serving"
code=$(curl -s -o "$tmp/attach.json" -w '%{http_code}' -X POST -H "Authorization: Bearer t-ops" \
  --data-binary "{\"path\":\"$tmp/g.didx\",\"disk\":true}" "$BASE/v1/admin/datasets/archive")
[ "$code" = "200" ] || { echo "hot attach returned $code: $(cat "$tmp/attach.json")" >&2; exit 1; }
curl -fsS -H "Authorization: Bearer t-ops" "$BASE/v1/archive/distance?s=3&t=9" >"$tmp/mt_archive.json"
diff -u "$tmp/versioned.json" "$tmp/mt_archive.json" || { echo "hot-attached dataset diverges" >&2; exit 1; }
curl -fsS -H "Authorization: Bearer t-ops" "$BASE/v1/admin/datasets" | grep -q '"archive"' \
  || { echo "dataset listing missing the hot-attached dataset" >&2; exit 1; }

echo "== per-dataset metrics series"
curl -fsS "$BASE/v1/metrics" >"$tmp/mt_metrics.txt"
for ds in wiki roads archive; do
  grep -q "hopdb_dataset_queries_total{dataset=\"$ds\"}" "$tmp/mt_metrics.txt" \
    || { echo "/v1/metrics missing the $ds series" >&2; exit 1; }
done

echo "== detaching the hot dataset drains and 404s"
code=$(curl -s -o /dev/null -w '%{http_code}' -X DELETE -H "Authorization: Bearer t-ops" "$BASE/v1/admin/datasets/archive")
[ "$code" = "200" ] || { echo "detach returned $code, want 200" >&2; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' -H "Authorization: Bearer t-ops" "$BASE/v1/archive/distance?s=3&t=9")
[ "$code" = "404" ] || { echo "detached dataset returned $code, want 404" >&2; exit 1; }
kill -TERM "$pid"
wait "$pid"
pid=""

echo "== cluster: primary + 2 replicas behind hopdb-router"
TOKEN=smoke-secret
P0=$((PORT+1)); P1=$((PORT+2)); P2=$((PORT+3)); PR=$((PORT+4))
PRIMARY="http://127.0.0.1:$P0"
ROUTER="http://127.0.0.1:$PR"
"$tmp/bin/hopdb-serve" -idx "$tmp/g.idx" -graph "$tmp/g.txt" -updates \
  -admin-token "$TOKEN" -addr "127.0.0.1:$P0" &
primary_pid=$!; pids="$pids $primary_pid"
wait_healthy_at "$PRIMARY" "$primary_pid"
replica_pids=()
for p in "$P1" "$P2"; do
  "$tmp/bin/hopdb-serve" -idx "$tmp/g.idx" -graph "$tmp/g.txt" -updates \
    -replica-of "$PRIMARY" -replica-token "$TOKEN" -replica-interval 100ms \
    -addr "127.0.0.1:$p" &
  rp=$!; pids="$pids $rp"; replica_pids+=("$rp")
  wait_healthy_at "http://127.0.0.1:$p" "$rp"
done
"$tmp/bin/hopdb-router" -replicas "$PRIMARY,http://127.0.0.1:$P1,http://127.0.0.1:$P2" \
  -primary "$PRIMARY" -hedge 50ms -addr "127.0.0.1:$PR" &
router_pid=$!; pids="$pids $router_pid"
wait_healthy_at "$ROUTER" "$router_pid"

echo "== applying an edge delete at the primary through the router's admin proxy"
# Delete the graph's first edge: guaranteed effective, so it gets seq 1.
read -r EU EV < <(awk '!/^[#%]/ { print $1, $2; exit }' "$tmp/g.txt")
code=$(curl -s -o "$tmp/update.json" -w '%{http_code}' -X POST \
  -H "Authorization: Bearer $TOKEN" -H "Content-Type: application/json" \
  --data-binary "[{\"op\":\"delete\",\"u\":$EU,\"v\":$EV}]" "$ROUTER/v1/admin/edges")
[ "$code" = "200" ] || { echo "admin delete via router returned $code: $(cat "$tmp/update.json")" >&2; exit 1; }
grep -q '"seq":1' "$tmp/update.json" || { echo "update response missing seq 1: $(cat "$tmp/update.json")" >&2; exit 1; }

echo "== waiting for both replicas to reach seq 1"
for p in "$P1" "$P2"; do
  ok=""
  for _ in $(seq 1 50); do
    if curl -fsS "http://127.0.0.1:$p/v1/stats" | grep -q '"seq":1'; then ok=1; break; fi
    sleep 0.2
  done
  [ -n "$ok" ] || { echo "replica on port $p never reached seq 1" >&2; exit 1; }
done

echo "== diffing router answers (read-your-writes) against hopdb-query on the patched index"
printf -- "- %s %s\n" "$EU" "$EV" >"$tmp/delta.txt"
"$tmp/bin/hopdb-update" -idx "$tmp/g.idx" -graph "$tmp/g.txt" -delta "$tmp/delta.txt" -o "$tmp/g2.idx"
"$tmp/bin/hopdb-query" -idx "$tmp/g2.idx" -q "$tmp/pairs.txt" >"$tmp/cli2.txt" || [ $? -eq 1 ]
awk '{
  if ($3 == "unreachable") printf("{\"s\":%s,\"t\":%s,\"reachable\":false}\n", $1, $2);
  else printf("{\"s\":%s,\"t\":%s,\"distance\":%s,\"reachable\":true}\n", $1, $2, $3);
}' "$tmp/cli2.txt" >"$tmp/expected2.jsonl"
while read -r s t; do
  curl -fsS -H "X-Hopdb-Min-Seq: 1" "$ROUTER/v1/distance?s=$s&t=$t"
done <"$tmp/pairs.txt" >"$tmp/served_router.jsonl"
diff -u "$tmp/expected2.jsonl" "$tmp/served_router.jsonl" || { echo "router answers diverge from the patched index" >&2; exit 1; }

echo "== killing one replica mid-serving; the router must keep answering"
kill -9 "${replica_pids[0]}"
while read -r s t; do
  curl -fsS -H "X-Hopdb-Min-Seq: 1" "$ROUTER/v1/distance?s=$s&t=$t"
done <"$tmp/pairs.txt" >"$tmp/served_router_degraded.jsonl"
diff -u "$tmp/expected2.jsonl" "$tmp/served_router_degraded.jsonl" || { echo "router answers changed after the replica kill" >&2; exit 1; }

echo "== metrics expositions"
curl -fsS "$ROUTER/v1/metrics" | grep -q '^hopdb_router_up 1' || { echo "router /v1/metrics missing hopdb_router_up" >&2; exit 1; }
curl -fsS "$PRIMARY/v1/metrics" | grep -q '^hopdb_queries_total ' || { echo "primary /v1/metrics missing hopdb_queries_total" >&2; exit 1; }

echo "== hedging A/B through hopdb-bench serve -hedge"
"$tmp/bin/hopdb-bench" -url "$ROUTER" -requests 200 -conc 4 -hedge serve | tee "$tmp/hedge.txt"
grep -q 'p99 delta with hedging' "$tmp/hedge.txt" || { echo "hedge comparison output missing" >&2; exit 1; }

echo "== shards: cutting the index into 4 rank shards plus a hub tier"
"$tmp/bin/hopdb-build" -in "$tmp/g.txt" -shards 4 -shard-dir "$tmp/shards"
for f in hub.sidx leaf0.sidx leaf1.sidx leaf2.sidx leaf3.sidx shard.json; do
  [ -f "$tmp/shards/$f" ] || { echo "shard build did not write $f" >&2; exit 1; }
done

echo "== serving the leaves (leaf0 twice) behind a scatter-gather router"
SPR=$((PORT+10))
SROUTER="http://127.0.0.1:$SPR"
shard_urls=""
shard_replica_pid=""
spn=0
for i in 0 1 2 3 0; do
  sp=$((PORT+5+spn)); spn=$((spn+1))   # ports PORT+5..PORT+9
  "$tmp/bin/hopdb-serve" -shard "$tmp/shards/leaf$i.sidx" -shard-map "$tmp/shards/shard.json" \
    -addr "127.0.0.1:$sp" &
  sp_pid=$!; pids="$pids $sp_pid"
  shard_replica_pid=$sp_pid   # ends up holding the last server: leaf0's extra replica
  wait_healthy_at "http://127.0.0.1:$sp" "$sp_pid"
  shard_urls="$shard_urls${shard_urls:+,}http://127.0.0.1:$sp"
done
"$tmp/bin/hopdb-router" -replicas "$shard_urls" -shard-map "$tmp/shards/shard.json" \
  -addr "127.0.0.1:$SPR" &
srouter_pid=$!; pids="$pids $srouter_pid"
wait_healthy_at "$SROUTER" "$srouter_pid"

echo "== diffing sharded answers byte-for-byte against hopdb-query"
while read -r s t; do
  curl -fsS "$SROUTER/v1/distance?s=$s&t=$t"
done <"$tmp/pairs.txt" >"$tmp/served_sharded.jsonl"
diff -u "$tmp/expected.jsonl" "$tmp/served_sharded.jsonl" || { echo "sharded answers diverge from hopdb-query" >&2; exit 1; }
curl -fsS -X POST --data-binary @"$tmp/batch.json" "$SROUTER/v1/batch" >"$tmp/served_sharded_batch.json"
diff -u "$tmp/expected_batch.json" "$tmp/served_sharded_batch.json" || { echo "sharded batch diverges from hopdb-query" >&2; exit 1; }

echo "== per-leaf resident bytes stay within 1/N of the index plus the hub tier"
hub_entries=$(grep -o '"hub_entries": *[0-9]*' "$tmp/shards/shard.json" | grep -o '[0-9]*$')
total_entries=$(grep -o '"entries": *[0-9]*' "$tmp/shards/shard.json" | grep -o '[0-9]*$' \
  | awk -v hub="$hub_entries" '{ s += $1 } END { print s + hub }')
bound=$(awk -v t="$total_entries" -v h="$hub_entries" 'BEGIN { print int(t * 8 / 4) + h * 8 }')
for u in $(echo "$shard_urls" | tr ',' ' '); do
  size=$(curl -fsS "$u/v1/stats" | grep -o '"size_bytes":[0-9]*' | head -1 | cut -d: -f2)
  [ "$size" -le "$bound" ] || { echo "leaf at $u holds $size label bytes, bound is $bound" >&2; exit 1; }
done
curl -fsS "$SROUTER/v1/stats" >"$tmp/sstats.json"
grep -q "\"entries\":$total_entries" "$tmp/sstats.json" \
  || { echo "router stats do not sum shard entries to $total_entries: $(cat "$tmp/sstats.json")" >&2; exit 1; }
rf=$(grep -o '"row_fetches":[0-9]*' "$tmp/sstats.json" | cut -d: -f2)
[ "${rf:-0}" -gt 0 ] || { echo "router reports no row fetches after a scatter-gather storm" >&2; exit 1; }

echo "== killing leaf0's extra replica mid-storm; answers must not change"
kill -9 "$shard_replica_pid"
while read -r s t; do
  curl -fsS "$SROUTER/v1/distance?s=$s&t=$t"
done <"$tmp/pairs.txt" >"$tmp/served_sharded_degraded.jsonl"
diff -u "$tmp/expected.jsonl" "$tmp/served_sharded_degraded.jsonl" || { echo "sharded answers changed after the replica kill" >&2; exit 1; }

echo "smoke OK"
