#!/usr/bin/env bash
# End-to-end serving smoke test: generate a synthetic graph, build its
# index in both formats, start hopdb-serve (heap, then -disk), and check
# that /v1/distance and /v1/batch answer exactly what hopdb-query answers
# on the same index — and that the legacy unversioned routes alias /v1.
# Run from the repo root (CI runs it as a dedicated job); needs curl.
set -euo pipefail

PORT="${SMOKE_PORT:-18357}"
BASE="http://127.0.0.1:$PORT"
tmp=$(mktemp -d)
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

wait_healthy() {
  for _ in $(seq 1 50); do
    curl -fsS "$BASE/v1/healthz" >/dev/null 2>&1 && return 0
    kill -0 "$pid" 2>/dev/null || { echo "hopdb-serve died during startup" >&2; return 1; }
    sleep 0.2
  done
  curl -fsS "$BASE/v1/healthz" >/dev/null
}

echo "== building binaries"
go build -o "$tmp/bin/" ./cmd/...

echo "== generating and indexing a synthetic graph"
"$tmp/bin/hopdb-gen" -model glp -n 500 -density 4 -seed 7 -o "$tmp/g.txt"
"$tmp/bin/hopdb-build" -in "$tmp/g.txt" -o "$tmp/g.idx" -disk "$tmp/g.didx"

echo "== starting hopdb-serve on $BASE"
"$tmp/bin/hopdb-serve" -idx "$tmp/g.idx" -addr "127.0.0.1:$PORT" -cache 1000 &
pid=$!
wait_healthy

echo "== querying the same pairs through hopdb-query and the server"
# Deterministic pair list covering in-range, s==t, and out-of-range ids.
awk 'BEGIN { for (i = 0; i < 60; i++) print (i * 37) % 500, (i * 91 + 13) % 500; print 3, 3; print 0, 9999 }' >"$tmp/pairs.txt"
# Exit 1 just flags that some pair was unreachable (0 9999 is); any other
# nonzero status is a real failure.
"$tmp/bin/hopdb-query" -idx "$tmp/g.idx" -q "$tmp/pairs.txt" >"$tmp/cli.txt" || [ $? -eq 1 ]

# hopdb-query prints "s t d" or "s t unreachable"; render the JSON the
# server documents for the same answers.
awk '{
  if ($3 == "unreachable") printf("{\"s\":%s,\"t\":%s,\"reachable\":false}\n", $1, $2);
  else printf("{\"s\":%s,\"t\":%s,\"distance\":%s,\"reachable\":true}\n", $1, $2, $3);
}' "$tmp/cli.txt" >"$tmp/expected.jsonl"

while read -r s t; do
  curl -fsS "$BASE/v1/distance?s=$s&t=$t"
done <"$tmp/pairs.txt" >"$tmp/served.jsonl"
diff -u "$tmp/expected.jsonl" "$tmp/served.jsonl" || { echo "/v1/distance answers diverge from hopdb-query" >&2; exit 1; }

echo "== checking the legacy route aliases /v1"
curl -fsS "$BASE/distance?s=3&t=9" >"$tmp/legacy.json"
curl -fsS "$BASE/v1/distance?s=3&t=9" >"$tmp/versioned.json"
diff -u "$tmp/legacy.json" "$tmp/versioned.json" || { echo "legacy /distance diverges from /v1/distance" >&2; exit 1; }

echo "== cross-checking POST /v1/batch"
awk 'BEGIN { printf("[") } { printf("%s[%s,%s]", NR == 1 ? "" : ",", $1, $2) } END { printf("]") }' "$tmp/pairs.txt" >"$tmp/batch.json"
printf '{"results":[%s]}\n' "$(paste -sd, "$tmp/expected.jsonl")" >"$tmp/expected_batch.json"
curl -fsS -X POST --data-binary @"$tmp/batch.json" "$BASE/v1/batch" >"$tmp/served_batch.json"
diff -u "$tmp/expected_batch.json" "$tmp/served_batch.json" || { echo "/v1/batch answers diverge from hopdb-query" >&2; exit 1; }

echo "== checking /v1/stats and oversized-batch rejection"
curl -fsS "$BASE/v1/stats" | grep -q '"backend":"heap"' || { echo "/v1/stats missing backend kind" >&2; exit 1; }
code=$(awk 'BEGIN { printf("["); for (i = 0; i < 10001; i++) printf("%s[1,2]", i ? "," : ""); printf("]") }' \
  | curl -s -o /dev/null -w '%{http_code}' -X POST --data-binary @- "$BASE/v1/batch")
[ "$code" = "413" ] || { echo "oversized batch returned $code, want 413" >&2; exit 1; }

echo "== graceful shutdown"
kill -TERM "$pid"
wait "$pid"
pid=""

echo "== serving the same graph straight from disk (-disk)"
"$tmp/bin/hopdb-serve" -disk "$tmp/g.didx" -disk-cache 512 -addr "127.0.0.1:$PORT" &
pid=$!
wait_healthy
curl -fsS "$BASE/v1/stats" | grep -q '"backend":"disk"' || { echo "disk /v1/stats missing backend kind" >&2; exit 1; }
while read -r s t; do
  curl -fsS "$BASE/v1/distance?s=$s&t=$t"
done <"$tmp/pairs.txt" >"$tmp/served_disk.jsonl"
diff -u "$tmp/expected.jsonl" "$tmp/served_disk.jsonl" || { echo "-disk answers diverge from hopdb-query" >&2; exit 1; }
kill -TERM "$pid"
wait "$pid"
pid=""

echo "smoke OK"
