#!/usr/bin/env bash
# End-to-end serving smoke test: generate a synthetic graph, build its
# index, start hopdb-serve, and check that /distance and /batch answer
# exactly what hopdb-query answers on the same index. Run from the repo
# root (CI runs it as a dedicated job); needs curl.
set -euo pipefail

PORT="${SMOKE_PORT:-18357}"
BASE="http://127.0.0.1:$PORT"
tmp=$(mktemp -d)
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$tmp/bin/" ./cmd/...

echo "== generating and indexing a synthetic graph"
"$tmp/bin/hopdb-gen" -model glp -n 500 -density 4 -seed 7 -o "$tmp/g.txt"
"$tmp/bin/hopdb-build" -in "$tmp/g.txt" -o "$tmp/g.idx"

echo "== starting hopdb-serve on $BASE"
"$tmp/bin/hopdb-serve" -idx "$tmp/g.idx" -addr "127.0.0.1:$PORT" -cache 1000 &
pid=$!
for _ in $(seq 1 50); do
  curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
  kill -0 "$pid" 2>/dev/null || { echo "hopdb-serve died during startup" >&2; exit 1; }
  sleep 0.2
done
curl -fsS "$BASE/healthz" >/dev/null

echo "== querying the same pairs through hopdb-query and the server"
# Deterministic pair list covering in-range, s==t, and out-of-range ids.
awk 'BEGIN { for (i = 0; i < 60; i++) print (i * 37) % 500, (i * 91 + 13) % 500; print 3, 3; print 0, 9999 }' >"$tmp/pairs.txt"
"$tmp/bin/hopdb-query" -idx "$tmp/g.idx" -q "$tmp/pairs.txt" >"$tmp/cli.txt"

# hopdb-query prints "s t d" or "s t unreachable"; render the JSON the
# server documents for the same answers.
awk '{
  if ($3 == "unreachable") printf("{\"s\":%s,\"t\":%s,\"reachable\":false}\n", $1, $2);
  else printf("{\"s\":%s,\"t\":%s,\"distance\":%s,\"reachable\":true}\n", $1, $2, $3);
}' "$tmp/cli.txt" >"$tmp/expected.jsonl"

while read -r s t; do
  curl -fsS "$BASE/distance?s=$s&t=$t"
done <"$tmp/pairs.txt" >"$tmp/served.jsonl"
diff -u "$tmp/expected.jsonl" "$tmp/served.jsonl" || { echo "/distance answers diverge from hopdb-query" >&2; exit 1; }

echo "== cross-checking POST /batch"
awk 'BEGIN { printf("[") } { printf("%s[%s,%s]", NR == 1 ? "" : ",", $1, $2) } END { printf("]") }' "$tmp/pairs.txt" >"$tmp/batch.json"
printf '{"results":[%s]}\n' "$(paste -sd, "$tmp/expected.jsonl")" >"$tmp/expected_batch.json"
curl -fsS -X POST --data-binary @"$tmp/batch.json" "$BASE/batch" >"$tmp/served_batch.json"
diff -u "$tmp/expected_batch.json" "$tmp/served_batch.json" || { echo "/batch answers diverge from hopdb-query" >&2; exit 1; }

echo "== checking /stats and oversized-batch rejection"
curl -fsS "$BASE/stats" | grep -q '"queries"' || { echo "/stats missing counters" >&2; exit 1; }
code=$(awk 'BEGIN { printf("["); for (i = 0; i < 10001; i++) printf("%s[1,2]", i ? "," : ""); printf("]") }' \
  | curl -s -o /dev/null -w '%{http_code}' -X POST --data-binary @- "$BASE/batch")
[ "$code" = "413" ] || { echo "oversized batch returned $code, want 413" >&2; exit 1; }

echo "== graceful shutdown"
kill -TERM "$pid"
wait "$pid"
pid=""

echo "smoke OK"
