package hopdb

import (
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/sp"
)

func TestQuickstartShape(t *testing.T) {
	b := NewGraphBuilder(false, false)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	idx, st, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries == 0 {
		t.Error("no entries built")
	}
	if d, ok := idx.Distance(0, 2); !ok || d != 2 {
		t.Errorf("Distance(0,2) = (%d,%v), want (2,true)", d, ok)
	}
	if _, ok := idx.Distance(0, 99); ok {
		t.Error("out-of-range query reported reachable")
	}
}

func TestAllMethodsThroughFacade(t *testing.T) {
	g, err := gen.GLP(gen.DefaultGLP(400, 3, 9))
	if err != nil {
		t.Fatal(err)
	}
	truth := make([]uint32, g.N())
	sp.BFSFrom(g, 5, truth)
	for _, opt := range []Options{
		{Method: Hybrid},
		{Method: Doubling},
		{Method: Stepping},
		{Method: Hybrid, External: true},
	} {
		opt.TempDir = t.TempDir()
		idx, _, err := Build(g, opt)
		if err != nil {
			t.Fatalf("%v external=%v: %v", opt.Method, opt.External, err)
		}
		for u := int32(0); u < g.N(); u += 17 {
			got, _ := idx.Distance(5, u)
			if got != truth[u] {
				t.Fatalf("%v: Distance(5,%d) = %d, want %d", opt.Method, u, got, truth[u])
			}
		}
	}
}

func TestPathReconstruction(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		g0, err := gen.ER(50, 140, true, 3)
		if err != nil {
			t.Fatal(err)
		}
		g := g0
		if weighted {
			g, err = gen.WithRandomWeights(g0, 6, 4)
			if err != nil {
				t.Fatal(err)
			}
		}
		idx, _, err := Build(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for s := int32(0); s < g.N(); s += 7 {
			for u := int32(0); u < g.N(); u += 9 {
				d, ok := idx.Distance(s, u)
				path, errP := idx.Path(s, u)
				if ok != (errP == nil) {
					t.Fatalf("reachability disagreement at (%d,%d): %v", s, u, errP)
				}
				if !ok {
					if !errors.Is(errP, ErrUnreachable) {
						t.Fatalf("unreachable (%d,%d) returned %v, want ErrUnreachable", s, u, errP)
					}
					continue
				}
				if path[0] != s || path[len(path)-1] != u {
					t.Fatalf("path endpoints wrong: %v for (%d,%d)", path, s, u)
				}
				length, err := idx.PathLength(path)
				if err != nil {
					t.Fatalf("invalid path %v: %v", path, err)
				}
				if length != d {
					t.Fatalf("path length %d != distance %d for (%d,%d)", length, d, s, u)
				}
			}
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	g, err := gen.GLP(gen.DefaultGLP(300, 3, 11))
	if err != nil {
		t.Fatal(err)
	}
	idx, _, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "idx.bin")
	if err := idx.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	for s := int32(0); s < g.N(); s += 13 {
		for u := int32(0); u < g.N(); u += 17 {
			a, _ := idx.Distance(s, u)
			b, _ := loaded.Distance(s, u)
			if a != b {
				t.Fatalf("loaded index differs at (%d,%d): %d vs %d", s, u, a, b)
			}
		}
	}
	// Path needs the graph back.
	if _, err := loaded.Path(0, 1); !errors.Is(err, ErrNoGraph) {
		t.Errorf("Path without graph returned %v, want ErrNoGraph", err)
	}
	loaded.AttachGraph(g)
	if _, err := loaded.Path(0, 1); err != nil {
		t.Errorf("Path after AttachGraph failed: %v", err)
	}
}

func TestDiskIndexThroughFacade(t *testing.T) {
	g, err := gen.GLP(gen.DefaultGLP(300, 3, 13))
	if err != nil {
		t.Fatal(err)
	}
	idx, _, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "idx.disk")
	if err := idx.SaveDiskIndex(path); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDiskIndex(path, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for s := int32(0); s < g.N(); s += 11 {
		for u := int32(0); u < g.N(); u += 19 {
			a, _ := idx.Distance(s, u)
			b, err := d.Distance(s, u)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("disk index differs at (%d,%d): %d vs %d", s, u, a, b)
			}
		}
	}
	if d.IOs() == 0 {
		t.Error("disk queries reported no I/O")
	}
}

func TestBitParallelThroughFacade(t *testing.T) {
	g, err := gen.GLP(gen.DefaultGLP(400, 4, 15))
	if err != nil {
		t.Fatal(err)
	}
	idx, _, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	truth := make([]uint32, g.N())
	sp.BFSFrom(g, 2, truth)
	if err := idx.EnableBitParallel(0); err != nil {
		t.Fatal(err)
	}
	for u := int32(0); u < g.N(); u += 7 {
		got, _ := idx.Distance(2, u)
		if got != truth[u] {
			t.Fatalf("bit-parallel facade: Distance(2,%d) = %d, want %d", u, got, truth[u])
		}
	}
	// Directed graphs are rejected.
	dg, err := gen.Path(5, true)
	if err != nil {
		t.Fatal(err)
	}
	didx, _, err := Build(dg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := didx.EnableBitParallel(0); err == nil {
		t.Error("directed bit-parallel accepted")
	}
}

func TestFacadeStats(t *testing.T) {
	g, err := gen.Star(30)
	if err != nil {
		t.Fatal(err)
	}
	idx, st, err := Build(g, Options{CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if idx.N() != 30 || idx.Entries() != 29 {
		t.Errorf("star stats: n=%d entries=%d", idx.N(), idx.Entries())
	}
	if idx.AvgLabel() <= 0 || idx.SizeBytes() != 29*8 {
		t.Errorf("avg=%v size=%d", idx.AvgLabel(), idx.SizeBytes())
	}
	if st.Iterations == 0 || len(st.PerIteration) != st.Iterations {
		t.Errorf("iteration stats: %d rows for %d iterations", len(st.PerIteration), st.Iterations)
	}
}

func TestDistanceBatch(t *testing.T) {
	g, err := gen.GLP(gen.DefaultGLP(400, 4, 19))
	if err != nil {
		t.Fatal(err)
	}
	idx, _, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var pairs []QueryPair
	for s := int32(0); s < g.N(); s += 11 {
		for u := int32(0); u < g.N(); u += 13 {
			pairs = append(pairs, QueryPair{S: s, T: u})
		}
	}
	serial := idx.DistanceBatch(pairs, 1)
	for _, workers := range []int{2, 4, 16} {
		par := idx.DistanceBatch(pairs, workers)
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d: result %d differs: %d vs %d", workers, i, par[i], serial[i])
			}
		}
	}
	// Spot-check against Distance.
	for i, p := range pairs[:20] {
		d, _ := idx.Distance(p.S, p.T)
		if serial[i] != d {
			t.Fatalf("batch result differs from Distance at %d", i)
		}
	}
	if out := idx.DistanceBatch(nil, 4); len(out) != 0 {
		t.Error("empty batch should return empty results")
	}
}
