package hopdb

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/dynamic"
	"repro/internal/wire"
)

// UpdateStats describes what online label maintenance has done so far;
// see Updatable.UpdateStats and the /v1/stats "updates" section.
type UpdateStats = wire.UpdateStats

// EdgeOp is one edge mutation: the element type of ApplyEdgeOps, of
// delta files (ParseEdgeDelta), and of POST /v1/admin/edges bodies.
type EdgeOp = wire.EdgeOp

// Edge operation names for EdgeOp.Op.
const (
	OpInsert = wire.OpInsert
	OpDelete = wire.OpDelete
)

// Update errors, re-exported from the maintenance engine for errors.Is.
var (
	// ErrNoEdge is returned by DeleteEdge when the edge does not exist.
	ErrNoEdge = dynamic.ErrNoEdge
	// ErrVertexRange is returned when an update names a vertex outside
	// [0, N); the vertex set of an updatable index is fixed at open time.
	ErrVertexRange = dynamic.ErrVertexRange
	// ErrSelfLoop is returned for updates with u == v.
	ErrSelfLoop = dynamic.ErrSelfLoop
	// ErrWeightRange is returned for insert weights beyond the graph
	// weight bound.
	ErrWeightRange = dynamic.ErrWeightRange
	// ErrUnknownOp is returned by ApplyEdgeOps for an EdgeOp whose Op is
	// neither OpInsert nor OpDelete.
	ErrUnknownOp = errors.New("hopdb: unknown edge op")
	// ErrJournalGap is returned by Replicator.ReplicationLog when the
	// requested cursor precedes the retained journal window: the puller
	// must reseed from a fresh snapshot.
	ErrJournalGap = dynamic.ErrJournalGap
	// ErrSeqGap is returned for out-of-order replication sequence numbers
	// (a pull skipped ops, or the cursor is past the journal head).
	ErrSeqGap = dynamic.ErrSeqGap
)

// ReplicationOp is one journaled edge mutation: an EdgeOp stamped with
// the sequence number it committed at and the label epoch it published.
type ReplicationOp = wire.SeqEdgeOp

// ReplicationLog is a journal suffix plus the serving head, as returned
// by Replicator.ReplicationLog and GET /v1/admin/replication/log.
type ReplicationLog = wire.ReplicationLog

// Replicator is the optional extension of Updatable for backends that
// journal their mutations for replication: an index opened with
// WithUpdates. A primary serves its journal through ReplicationLog;
// replicas that loaded the same index file replay it in order through
// ApplyReplicated, converging to byte-identical label epochs (the
// maintenance code is deterministic). Seq is the read-your-writes
// currency: servers stamp it on every response, and clients demand it
// with the X-Hopdb-Min-Seq header.
type Replicator interface {
	// Seq returns the sequence number of the last committed mutation
	// (zero before the first). Lock-free: safe to call per response.
	Seq() int64
	// Epoch returns the current published label epoch. Lock-free.
	Epoch() int64
	// ReplicationLog returns the journaled ops after since (capped at
	// max when max > 0). ErrJournalGap means since is older than the
	// retained window; ErrSeqGap means it is past the head.
	ReplicationLog(since int64, max int) (ReplicationLog, error)
	// ApplyReplicated applies one pulled op under the primary's sequence
	// number. Ops at or below the current sequence are ignored; a gap
	// returns ErrSeqGap.
	ApplyReplicated(op ReplicationOp) error
}

// UpdateOptions tunes online label maintenance; see WithUpdates.
type UpdateOptions struct {
	// MaxStaleFraction is the dirty-vertex budget (as a fraction of the
	// vertex count) a DeleteEdge may accumulate before the labels are
	// rebuilt from scratch instead of partially repaired. Zero selects
	// the default of 0.25.
	MaxStaleFraction float64
	// RebuildParallelism shards full rebuilds across goroutines;
	// <= 1 rebuilds serially.
	RebuildParallelism int
	// JournalLimit bounds the in-memory replication journal, in ops.
	// Zero selects the default of one million; negative keeps it
	// unbounded. See Replicator.
	JournalLimit int
	// InitialSeq positions the index at a non-zero journal sequence:
	// set it when the index file is a snapshot of a primary that had
	// already committed InitialSeq mutations (its /v1/stats updates.seq
	// at save time), so a replica resumes pulling from there instead of
	// replaying — or failing to obtain — the primary's earlier history.
	InitialSeq int64
	// Rebuild carries the build options the index was originally
	// constructed with, so a staleness-triggered full rebuild reproduces
	// the same labeling regime (method, switch point, pruning mode)
	// instead of reverting to defaults. Construction-only fields
	// (External, CheckpointDir, Resume) are ignored; Parallelism is
	// superseded by RebuildParallelism. Nil keeps default options, which
	// is correct for indexes built with default options.
	Rebuild *Options
}

// Updatable is the optional extension of Querier for backends that
// accept online edge updates: an index opened with WithUpdates. Insert
// and delete both publish a fresh immutable label epoch before
// returning, so concurrent Distance readers never block and never
// observe a half-applied update — each query (and each batch) answers
// from either the pre- or the post-update graph.
type Updatable interface {
	// InsertEdge adds the edge u->v (undirected: {u,v}) with weight w
	// (ignored for unweighted graphs; <= 0 means 1) and patches the
	// labels incrementally. Inserting an existing edge is a no-op
	// unless the weight improves.
	InsertEdge(u, v, w int32) error
	// DeleteEdge removes the edge u->v, repairing the affected labels
	// (or rebuilding them past the staleness threshold). Returns
	// ErrNoEdge if the edge is not present.
	DeleteEdge(u, v int32) error
	// UpdateStats snapshots the maintenance counters.
	UpdateStats() UpdateStats
	// Save writes the current label epoch in the v2 flat format, so a
	// patched index can be reopened later (heap or mmap) without a
	// rebuild.
	Save(path string) error
}

// dynQuerier adapts the maintenance engine to the Querier contract. Each
// single query loads the current epoch once; each batch loads it once
// for the whole batch, so a batch is answered from one consistent graph
// state even while a writer streams updates.
type dynQuerier struct {
	d *dynamic.Index
}

func (q *dynQuerier) Distance(s, t int32) (uint32, bool) {
	d := q.d.Current().Distance(s, t)
	return d, d != Infinity
}

func (q *dynQuerier) DistanceBatchInto(results []uint32, pairs []QueryPair, workers int) []uint32 {
	f := q.d.Current()
	return batchInto(results, pairs, workers, func(pairs []QueryPair, results []uint32) {
		for i, p := range pairs {
			results[i] = f.Distance(p.S, p.T)
		}
	})
}

// Lookup implements Lookuper; in-memory queries cannot fail.
func (q *dynQuerier) Lookup(s, t int32) (uint32, bool, error) {
	d, ok := q.Distance(s, t)
	return d, ok, nil
}

// LookupBatchInto implements LookupBatcher; in-memory batches cannot
// fail.
func (q *dynQuerier) LookupBatchInto(results []uint32, pairs []QueryPair, workers int) ([]uint32, error) {
	return q.DistanceBatchInto(results, pairs, workers), nil
}

func (q *dynQuerier) N() int32 { return q.d.N() }

func (q *dynQuerier) Stats() QuerierStats {
	f := q.d.Current()
	return QuerierStats{
		Backend:   BackendDynamic,
		Kernel:    KernelScalar,
		Directed:  f.Directed,
		Vertices:  f.N,
		Entries:   f.Entries(),
		SizeBytes: f.SizeBytes(),
	}
}

func (q *dynQuerier) Close() error { return nil }

// Path implements Pather: the dynamic backend always holds the live
// adjacency, so path reconstruction works (briefly serializing with
// writers so the walk sees one consistent graph state).
func (q *dynQuerier) Path(s, t int32) ([]int32, error) { return q.d.Path(s, t) }

func (q *dynQuerier) InsertEdge(u, v, w int32) error { return q.d.InsertEdge(u, v, w) }
func (q *dynQuerier) DeleteEdge(u, v int32) error    { return q.d.DeleteEdge(u, v) }
func (q *dynQuerier) UpdateStats() UpdateStats       { return q.d.Stats() }

// Replicator implementation: the maintenance engine journals every
// effective mutation.
func (q *dynQuerier) Seq() int64   { return q.d.Seq() }
func (q *dynQuerier) Epoch() int64 { return q.d.Epoch() }
func (q *dynQuerier) ReplicationLog(since int64, max int) (ReplicationLog, error) {
	return q.d.ReplicationLog(since, max)
}
func (q *dynQuerier) ApplyReplicated(op ReplicationOp) error { return q.d.ApplyReplicated(op) }

// Save writes the current label epoch in the v2 flat format.
func (q *dynQuerier) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := q.d.Current().Write(f); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	return f.Close()
}

// ApplyEdgeOps applies ops to an updatable index in order, returning how
// many were applied and the first failure (ops after it are not
// attempted, so a caller can fix the offending op and resume from it).
func ApplyEdgeOps(u Updatable, ops []EdgeOp) (int, error) {
	for i, op := range ops {
		var err error
		switch op.Op {
		case OpInsert:
			err = u.InsertEdge(op.U, op.V, op.W)
		case OpDelete:
			err = u.DeleteEdge(op.U, op.V)
		default:
			err = fmt.Errorf("%w %q (want %q or %q)", ErrUnknownOp, op.Op, OpInsert, OpDelete)
		}
		if err != nil {
			return i, fmt.Errorf("op %d (%s %d %d): %w", i, op.Op, op.U, op.V, err)
		}
	}
	return len(ops), nil
}

// ParseEdgeDelta reads a textual edge-delta stream, one operation per
// line ('#' and '%' start comments, blank lines are skipped):
//
//	"+ u v"      insert edge (weight 1)
//	"+ u v w"    insert edge with weight w (weighted graphs)
//	"- u v"      delete edge
//
// It is the format hopdb-update applies to an on-disk index.
func ParseEdgeDelta(r io.Reader) ([]EdgeOp, error) {
	var ops []EdgeOp
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexAny(line, "#%"); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		op := EdgeOp{}
		switch fields[0] {
		case "+":
			op.Op = OpInsert
			if len(fields) != 3 && len(fields) != 4 {
				return nil, fmt.Errorf("hopdb: delta line %d: want \"+ u v [w]\", got %q", lineNo, sc.Text())
			}
		case "-":
			op.Op = OpDelete
			if len(fields) != 3 {
				return nil, fmt.Errorf("hopdb: delta line %d: want \"- u v\", got %q", lineNo, sc.Text())
			}
		default:
			return nil, fmt.Errorf("hopdb: delta line %d: operations start with + or -, got %q", lineNo, sc.Text())
		}
		parse := func(s, what string) (int32, error) {
			v, err := strconv.ParseInt(s, 10, 32)
			if err != nil {
				return 0, fmt.Errorf("hopdb: delta line %d: bad %s %q", lineNo, what, s)
			}
			return int32(v), nil
		}
		var err error
		if op.U, err = parse(fields[1], "vertex"); err != nil {
			return nil, err
		}
		if op.V, err = parse(fields[2], "vertex"); err != nil {
			return nil, err
		}
		if len(fields) == 4 {
			if op.W, err = parse(fields[3], "weight"); err != nil {
				return nil, err
			}
		}
		ops = append(ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("hopdb: reading delta: %w", err)
	}
	return ops, nil
}
