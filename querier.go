package hopdb

import "repro/internal/wire"

// Backend identifies which implementation answers a Querier's queries;
// see QuerierStats.
type Backend = wire.Backend

// The built-in backend kinds reported by Querier.Stats.
const (
	// BackendHeap serves from label arrays resident in process memory
	// (Build, or Open without options).
	BackendHeap = wire.BackendHeap
	// BackendMmap serves from a memory-mapped index file (Open with
	// WithMmap).
	BackendMmap = wire.BackendMmap
	// BackendDisk serves from the block-addressable on-disk format (Open
	// with WithDisk), reading only the label blocks each query needs.
	BackendDisk = wire.BackendDisk
	// BackendRemote forwards queries to a hopdb-serve instance over HTTP
	// (Open with WithRemote).
	BackendRemote = wire.BackendRemote
	// BackendDynamic serves from heap labels maintained online (Open
	// with WithUpdates); the Querier also implements Updatable.
	BackendDynamic = wire.BackendDynamic
)

// QuerierStats describes a query backend: what serves the answers and
// how big the index is.
type QuerierStats = wire.QuerierStats

// Kernel identifies which distance kernel answers an in-memory backend's
// queries; see QuerierStats.
type Kernel = wire.Kernel

// The kernel kinds reported by QuerierStats.Kernel.
const (
	// KernelScalar is the portable merge-join over 8-byte label entries.
	KernelScalar = wire.KernelScalar
	// KernelCompact is the branch-free merge over packed 4-byte keys
	// (EnableCompact / WithCompactKernel).
	KernelCompact = wire.KernelCompact
	// KernelBitParallel answers from the bit-parallel hub tuples
	// (EnableBitParallel / WithBitParallel).
	KernelBitParallel = wire.KernelBitParallel
)

// Querier is the backend-agnostic distance query contract. Every way of
// holding a hop-doubling index — in heap memory (Build, Open), memory-
// mapped (WithMmap), resident on disk (WithDisk), bit-parallel
// accelerated (WithBitParallel), or behind a hopdb-serve instance
// (WithRemote, package repro/client) — satisfies it, so call sites and
// servers are written once and work against any backend.
//
// Implementations are safe for concurrent use.
type Querier interface {
	// Distance returns the exact distance from s to t and whether t is
	// reachable from s, in the caller's original vertex ids. Unreachable
	// (and out-of-range) pairs answer (Infinity, false).
	Distance(s, t int32) (uint32, bool)
	// DistanceBatchInto answers many queries into a caller-provided
	// results slice (len(results) >= len(pairs)), sharding across up to
	// workers goroutines where the backend benefits from it, and returns
	// results[:len(pairs)] with results[i] answering pairs[i]
	// (Infinity for unreachable pairs).
	DistanceBatchInto(results []uint32, pairs []QueryPair, workers int) []uint32
	// N returns the number of indexed vertices.
	N() int32
	// Stats describes the backend and index size.
	Stats() QuerierStats
	// Close releases backend resources (mmap, file handles, connections).
	// The Querier must not be used afterwards.
	Close() error
}

// Pather is the optional extension of Querier for backends that can
// reconstruct shortest paths, not just distances: an Index with its graph
// attached (WithGraph), or a remote client whose server has one.
// Path returns ErrNoGraph when the backend cannot reconstruct paths and
// ErrUnreachable when no path exists.
type Pather interface {
	Path(s, t int32) ([]int32, error)
}

// Lookuper is the optional extension of Querier for backends whose
// queries can fail for reasons other than unreachability — disk I/O,
// the network. Lookup reports such failures instead of folding them
// into (Infinity, false), so servers and tools can distinguish "t is
// not reachable" from "the answer could not be computed" (and, e.g.,
// avoid caching the latter). Every built-in backend implements it; for
// heap and mmap indexes the error is always nil.
type Lookuper interface {
	Lookup(s, t int32) (uint32, bool, error)
}

// LookupBatcher is the batch form of Lookuper: like DistanceBatchInto
// but reporting the first failure instead of writing Infinity. The
// results content is unspecified when an error is returned.
type LookupBatcher interface {
	LookupBatchInto(results []uint32, pairs []QueryPair, workers int) ([]uint32, error)
}

// Every local backend satisfies the contracts; the remote client is
// asserted in the root tests to avoid importing it here.
var (
	_ Querier       = (*Index)(nil)
	_ Querier       = (*diskQuerier)(nil)
	_ Querier       = (*dynQuerier)(nil)
	_ Pather        = (*Index)(nil)
	_ Pather        = (*dynQuerier)(nil)
	_ Lookuper      = (*Index)(nil)
	_ Lookuper      = (*diskQuerier)(nil)
	_ Lookuper      = (*dynQuerier)(nil)
	_ LookupBatcher = (*Index)(nil)
	_ LookupBatcher = (*diskQuerier)(nil)
	_ LookupBatcher = (*dynQuerier)(nil)
	_ Updatable     = (*dynQuerier)(nil)
	_ Replicator    = (*dynQuerier)(nil)
)

// Lookup implements Lookuper; in-memory queries cannot fail, so the
// error is always nil.
func (x *Index) Lookup(s, t int32) (uint32, bool, error) {
	d, ok := x.Distance(s, t)
	return d, ok, nil
}

// LookupBatchInto implements LookupBatcher; in-memory batches cannot
// fail, so the error is always nil.
func (x *Index) LookupBatchInto(results []uint32, pairs []QueryPair, workers int) ([]uint32, error) {
	return x.DistanceBatchInto(results, pairs, workers), nil
}

// Stats describes the index for the Querier contract: heap- or mmap-
// backed, and which kernel answers point queries (the same precedence
// Distance uses: bit-parallel, then compact, then scalar).
func (x *Index) Stats() QuerierStats {
	backend := BackendHeap
	if x.flat.Mapped() {
		backend = BackendMmap
	}
	kernel := KernelScalar
	if x.ck.Load() != nil {
		kernel = KernelCompact
	}
	if x.bp.Load() != nil {
		kernel = KernelBitParallel
	}
	return QuerierStats{
		Backend:     backend,
		Kernel:      kernel,
		Directed:    x.flat.Directed,
		Vertices:    x.flat.N,
		Entries:     x.Entries(),
		SizeBytes:   x.SizeBytes(),
		BitParallel: x.bp.Load() != nil,
	}
}
