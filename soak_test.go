package hopdb

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/sp"
)

// TestSoakLargeScaleFree is the scaled-up confidence run: a 50k-vertex
// GLP graph through the full public pipeline (hybrid build, bit-parallel
// transform, disk round trip) with sampled ground-truth checks. Skipped
// under -short.
func TestSoakLargeScaleFree(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const n = 50000
	g, err := gen.GLP(gen.DefaultGLP(n, 6, 2024))
	if err != nil {
		t.Fatal(err)
	}
	idx, st, err := Build(g, Options{Method: Hybrid, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("soak: %v -> %d entries (%.1f/vertex) in %d iterations, %v",
		g, st.Entries, idx.AvgLabel(), st.Iterations, st.Duration)

	// Label sizes must stay in the near-linear regime the paper claims.
	if idx.AvgLabel() > 500 {
		t.Errorf("avg label %.1f: small hub dimension assumption violated", idx.AvgLabel())
	}

	truth := make([]uint32, g.N())
	sources := []int32{0, 1, 77, 4999, 25000, 49999}
	for _, s := range sources {
		sp.BFSFrom(g, s, truth)
		for u := int32(0); u < g.N(); u += 101 {
			got, _ := idx.Distance(s, u)
			if got != truth[u] {
				t.Fatalf("dist(%d,%d) = %d, want %d", s, u, got, truth[u])
			}
		}
	}

	if err := idx.EnableBitParallel(0); err != nil {
		t.Fatal(err)
	}
	sp.BFSFrom(g, 123, truth)
	for u := int32(0); u < g.N(); u += 211 {
		got, _ := idx.Distance(123, u)
		if got != truth[u] {
			t.Fatalf("bit-parallel dist(123,%d) = %d, want %d", u, got, truth[u])
		}
	}
}
