// Package hopdb is a Go implementation of Hop-Doubling Label Indexing for
// point-to-point distance querying on scale-free networks (Jiang, Fu,
// Wong, Xu; PVLDB 7(12), 2014).
//
// It builds a 2-hop label index over a static directed or undirected,
// weighted or unweighted graph, and answers exact s-t distance queries by
// merging the two vertices' label lists. On scale-free graphs the index
// stays near-linear in the vertex count (O(h*|V|) for a small hub
// dimension h), making queries orders of magnitude faster than online
// bidirectional search while keeping the index far smaller than a
// distance table.
//
// # Quick start
//
//	b := hopdb.NewGraphBuilder(false, false) // undirected, unweighted
//	b.AddEdge(0, 1, 1)
//	b.AddEdge(1, 2, 1)
//	g, _ := b.Build()
//	idx, _, _ := hopdb.Build(g, hopdb.Options{})
//	d, ok := idx.Distance(0, 2) // 2, true
//
// # Construction methods
//
// Three schedules from the paper are available: Hop-Doubling (label joins
// against the full index, covering path hop lengths that double every two
// iterations), Hop-Stepping (joins against single edges, one hop per
// iteration, bounding candidate growth), and the Hybrid default (stepping
// for the first ten iterations, then doubling). All three produce correct
// indexes; they differ in construction cost.
//
// Set Options.External to build with the paper's I/O-efficient disk-based
// algorithm, which keeps label files on disk, joins them with sorted
// merge scans and block-nested loops under a configurable memory budget,
// and reports block I/O counts. The external builder produces exactly the
// same index as the in-memory one.
//
// # One Querier, every backend
//
// A saved index opens for querying through one entry point, Open, in
// whichever regime the deployment needs — every backend satisfies the
// same Querier contract and answers identical distances:
//
//	q, _ := hopdb.Open("g.idx")                                       // heap
//	q, _ := hopdb.Open("g.idx", hopdb.WithMmap())                     // memory-mapped, zero-copy
//	q, _ := hopdb.Open("g.didx", hopdb.WithDisk(hopdb.DiskOptions{})) // disk-resident
//	q, _ := hopdb.Open("", hopdb.WithRemote("http://host:8080"))      // behind hopdb-serve
//
// WithGraph re-attaches the original graph (enabling Path via the Pather
// interface) and WithBitParallel enables the Section 6 acceleration. The
// legacy loaders (LoadIndex, LoadIndexFlat, OpenDiskIndex) remain as
// deprecated wrappers around the same code paths.
//
// # Label storage
//
// Queries are served from a flat CSR representation (label.FlatIndex):
// one contiguous entries array per label side addressed by per-vertex
// offsets, frozen from the mutable slice-of-slices form when construction
// finishes. Index.Save writes that layout verbatim (the v2 format), so
// Open re-creates it from a single read with O(1) allocations, or
// memory-maps it without copying the payload at all; legacy v1 files
// still load.
//
// # Beyond distances
//
// Index.Path reconstructs a shortest path (not just its length) by
// descending the distance field. For undirected unweighted graphs,
// Index.EnableBitParallel folds the top-ranked hub labels into the
// bit-parallel form of the paper's Section 6, accelerating queries.
// Index.SaveDiskIndex writes the block-addressable format that
// Open(path, WithDisk(...)) serves straight from disk, reading only two
// label blocks per query; package repro/client serves the same contract
// over HTTP from a hopdb-serve instance.
package hopdb
