package hopdb

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one of the cmd binaries into dir.
func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

// TestCLIPipeline drives the full toolchain: generate a graph, inspect
// it, build both index formats, and query them.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline is slow; skipped in -short mode")
	}
	dir := t.TempDir()
	genBin := buildTool(t, dir, "hopdb-gen")
	statsBin := buildTool(t, dir, "hopdb-stats")
	buildBin := buildTool(t, dir, "hopdb-build")
	queryBin := buildTool(t, dir, "hopdb-query")

	graphPath := filepath.Join(dir, "g.txt")
	out, err := exec.Command(genBin, "-model", "glp", "-n", "800", "-density", "4", "-seed", "3", "-o", graphPath).CombinedOutput()
	if err != nil {
		t.Fatalf("hopdb-gen: %v\n%s", err, out)
	}
	if _, err := os.Stat(graphPath); err != nil {
		t.Fatalf("graph file missing: %v", err)
	}

	out, err = exec.Command(statsBin, "-in", graphPath).CombinedOutput()
	if err != nil {
		t.Fatalf("hopdb-stats: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "rank exponent") {
		t.Errorf("stats output unexpected:\n%s", out)
	}

	idxPath := filepath.Join(dir, "g.idx")
	diskPath := filepath.Join(dir, "g.didx")
	out, err = exec.Command(buildBin, "-in", graphPath, "-o", idxPath, "-disk", diskPath, "-stats").CombinedOutput()
	if err != nil {
		t.Fatalf("hopdb-build: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "built:") {
		t.Errorf("build output unexpected:\n%s", out)
	}

	// External build path as well.
	extIdx := filepath.Join(dir, "g-ext.idx")
	out, err = exec.Command(buildBin, "-in", graphPath, "-o", extIdx, "-external", "-tmp", dir).CombinedOutput()
	if err != nil {
		t.Fatalf("hopdb-build -external: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "external I/O") {
		t.Errorf("external build output missing I/O line:\n%s", out)
	}

	// Query both formats and compare answers.
	queries := "0 1\n5 99\n700 3\n"
	run := func(args ...string) string {
		cmd := exec.Command(queryBin, args...)
		cmd.Stdin = strings.NewReader(queries)
		out, err := cmd.Output()
		if err != nil {
			t.Fatalf("hopdb-query %v: %v", args, err)
		}
		return string(out)
	}
	memOut := run("-idx", idxPath)
	mmapOut := run("-idx", idxPath, "-mmap")
	diskOut := run("-disk", diskPath)
	extOut := run("-idx", extIdx)
	if memOut != diskOut || memOut != extOut || memOut != mmapOut {
		t.Errorf("query outputs differ:\nmem:\n%s\nmmap:\n%s\ndisk:\n%s\next:\n%s", memOut, mmapOut, diskOut, extOut)
	}
	if len(strings.Split(strings.TrimSpace(memOut), "\n")) != 3 {
		t.Errorf("expected 3 answers, got:\n%s", memOut)
	}
}

// TestCLIBenchSmoke runs one tiny bench section through the CLI.
func TestCLIBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI bench is slow; skipped in -short mode")
	}
	dir := t.TempDir()
	benchBin := buildTool(t, dir, "hopdb-bench")
	out, err := exec.Command(benchBin, "-datasets", "enron", "-scale", "0.2", "-queries", "50", "table7").CombinedOutput()
	if err != nil {
		t.Fatalf("hopdb-bench: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "enron") {
		t.Errorf("bench output unexpected:\n%s", out)
	}
}
