package hopdb

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one of the cmd binaries into dir.
func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

// TestCLIPipeline drives the full toolchain: generate a graph, inspect
// it, build both index formats, and query them.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline is slow; skipped in -short mode")
	}
	dir := t.TempDir()
	genBin := buildTool(t, dir, "hopdb-gen")
	statsBin := buildTool(t, dir, "hopdb-stats")
	buildBin := buildTool(t, dir, "hopdb-build")
	queryBin := buildTool(t, dir, "hopdb-query")

	graphPath := filepath.Join(dir, "g.txt")
	out, err := exec.Command(genBin, "-model", "glp", "-n", "800", "-density", "4", "-seed", "3", "-o", graphPath).CombinedOutput()
	if err != nil {
		t.Fatalf("hopdb-gen: %v\n%s", err, out)
	}
	if _, err := os.Stat(graphPath); err != nil {
		t.Fatalf("graph file missing: %v", err)
	}

	out, err = exec.Command(statsBin, "-in", graphPath).CombinedOutput()
	if err != nil {
		t.Fatalf("hopdb-stats: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "rank exponent") {
		t.Errorf("stats output unexpected:\n%s", out)
	}

	idxPath := filepath.Join(dir, "g.idx")
	diskPath := filepath.Join(dir, "g.didx")
	out, err = exec.Command(buildBin, "-in", graphPath, "-o", idxPath, "-disk", diskPath, "-stats").CombinedOutput()
	if err != nil {
		t.Fatalf("hopdb-build: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "built:") {
		t.Errorf("build output unexpected:\n%s", out)
	}

	// External build path as well.
	extIdx := filepath.Join(dir, "g-ext.idx")
	out, err = exec.Command(buildBin, "-in", graphPath, "-o", extIdx, "-external", "-tmp", dir).CombinedOutput()
	if err != nil {
		t.Fatalf("hopdb-build -external: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "external I/O") {
		t.Errorf("external build output missing I/O line:\n%s", out)
	}

	// Query both formats and compare answers.
	queries := "0 1\n5 99\n700 3\n"
	run := func(args ...string) string {
		cmd := exec.Command(queryBin, args...)
		cmd.Stdin = strings.NewReader(queries)
		out, err := cmd.Output()
		// Exit 1 means some pair was unreachable — a successful run for
		// this cross-check, which only compares the answers.
		var ee *exec.ExitError
		if err != nil && (!errors.As(err, &ee) || ee.ExitCode() != 1) {
			t.Fatalf("hopdb-query %v: %v", args, err)
		}
		return string(out)
	}
	memOut := run("-idx", idxPath)
	mmapOut := run("-idx", idxPath, "-mmap")
	diskOut := run("-disk", diskPath)
	extOut := run("-idx", extIdx)
	if memOut != diskOut || memOut != extOut || memOut != mmapOut {
		t.Errorf("query outputs differ:\nmem:\n%s\nmmap:\n%s\ndisk:\n%s\next:\n%s", memOut, mmapOut, diskOut, extOut)
	}
	if len(strings.Split(strings.TrimSpace(memOut), "\n")) != 3 {
		t.Errorf("expected 3 answers, got:\n%s", memOut)
	}
}

// TestCLIBenchSmoke runs one tiny bench section through the CLI.
func TestCLIBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI bench is slow; skipped in -short mode")
	}
	dir := t.TempDir()
	benchBin := buildTool(t, dir, "hopdb-bench")
	out, err := exec.Command(benchBin, "-datasets", "enron", "-scale", "0.2", "-queries", "50", "table7").CombinedOutput()
	if err != nil {
		t.Fatalf("hopdb-bench: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "enron") {
		t.Errorf("bench output unexpected:\n%s", out)
	}
}

// TestQueryCLIStdinAndExitCodes pins down the hopdb-query contract:
// "-q -" (and omitting -q) reads stdin, and the exit status separates
// all-reachable (0), unreachable pairs present (1), and bad input (3).
func TestQueryCLIStdinAndExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI exit-code test builds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	buildBin := buildTool(t, dir, "hopdb-build")
	queryBin := buildTool(t, dir, "hopdb-query")

	// Two components: 0-1-2 and 3-4.
	graphPath := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(graphPath, []byte("0 1\n1 2\n3 4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	idxPath := filepath.Join(dir, "g.idx")
	if out, err := exec.Command(buildBin, "-in", graphPath, "-o", idxPath).CombinedOutput(); err != nil {
		t.Fatalf("hopdb-build: %v\n%s", err, out)
	}

	run := func(stdin string, args ...string) (string, int) {
		cmd := exec.Command(queryBin, args...)
		cmd.Stdin = strings.NewReader(stdin)
		out, err := cmd.Output()
		code := 0
		if err != nil {
			var ee *exec.ExitError
			if !errors.As(err, &ee) {
				t.Fatalf("hopdb-query %v: %v", args, err)
			}
			code = ee.ExitCode()
		}
		return string(out), code
	}

	// All reachable: exit 0.
	if out, code := run("0 2\n1 2\n", "-idx", idxPath); code != 0 || out != "0 2 2\n1 2 1\n" {
		t.Errorf("reachable run = code %d, output %q", code, out)
	}
	// Explicit "-q -" stdin convention behaves identically.
	if out, code := run("0 2\n", "-idx", idxPath, "-q", "-"); code != 0 || out != "0 2 2\n" {
		t.Errorf(`-q - run = code %d, output %q`, code, out)
	}
	// An unreachable pair still answers but exits 1.
	if out, code := run("0 2\n0 4\n", "-idx", idxPath); code != 1 || !strings.Contains(out, "0 4 unreachable") {
		t.Errorf("unreachable run = code %d, output %q, want code 1", code, out)
	}
	// Malformed input is reported, remaining queries still answer, exit 3.
	if out, code := run("not a pair\n0 1\n", "-idx", idxPath); code != 3 || !strings.Contains(out, "0 1 1") {
		t.Errorf("bad-input run = code %d, output %q, want code 3", code, out)
	}
	// Bad input outranks unreachable.
	if _, code := run("garbage\n0 4\n", "-idx", idxPath); code != 3 {
		t.Errorf("bad-input+unreachable run = code %d, want 3", code)
	}
	// A query file that does not exist is a runtime failure, not silence.
	if _, code := run("", "-idx", idxPath, "-q", filepath.Join(dir, "missing.txt")); code != 3 {
		t.Errorf("missing query file = code %d, want 3", code)
	}
	// Usage errors keep the conventional exit 2.
	if _, code := run("", "-idx", idxPath, "-disk", idxPath); code != 2 {
		t.Errorf("conflicting flags = code %d, want 2", code)
	}
}

// TestUpdateCLI drives hopdb-update end to end: build an index for a
// path graph, apply a delta that short-circuits it and severs one link,
// and verify the patched index answers the mutated graph.
func TestUpdateCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI update test builds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	buildBin := buildTool(t, dir, "hopdb-build")
	updateBin := buildTool(t, dir, "hopdb-update")
	queryBin := buildTool(t, dir, "hopdb-query")

	// Path 0-1-2-3-4.
	graphPath := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(graphPath, []byte("0 1\n1 2\n2 3\n3 4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	idxPath := filepath.Join(dir, "g.idx")
	if out, err := exec.Command(buildBin, "-in", graphPath, "-o", idxPath).CombinedOutput(); err != nil {
		t.Fatalf("hopdb-build: %v\n%s", err, out)
	}

	deltaPath := filepath.Join(dir, "delta.txt")
	delta := "# shortcut, then sever the middle\n+ 0 4\n- 1 2\n"
	if err := os.WriteFile(deltaPath, []byte(delta), 0o644); err != nil {
		t.Fatal(err)
	}
	patched := filepath.Join(dir, "patched.idx")
	patchedGraph := filepath.Join(dir, "patched.txt")
	out, err := exec.Command(updateBin, "-idx", idxPath, "-graph", graphPath,
		"-delta", deltaPath, "-o", patched, "-out-graph", patchedGraph).CombinedOutput()
	if err != nil {
		t.Fatalf("hopdb-update: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "applied 2 ops") || !strings.Contains(string(out), "1 inserts, 1 deletes") {
		t.Errorf("update output unexpected:\n%s", out)
	}

	// Patched graph: 0-1, 0-4, 2-3, 3-4. d(0,4)=1, d(1,2)=4 (1-0-4-3-2),
	// d(0,3)=2.
	cmd := exec.Command(queryBin, "-idx", patched)
	cmd.Stdin = strings.NewReader("0 4\n1 2\n0 3\n")
	qout, err := cmd.Output()
	if err != nil {
		t.Fatalf("hopdb-query on patched index: %v", err)
	}
	want := "0 4 1\n1 2 4\n0 3 2\n"
	if string(qout) != want {
		t.Errorf("patched answers = %q, want %q", qout, want)
	}

	// The emitted mutated edge list must rebuild to the same answers.
	idx2 := filepath.Join(dir, "rebuilt.idx")
	if out, err := exec.Command(buildBin, "-in", patchedGraph, "-o", idx2).CombinedOutput(); err != nil {
		t.Fatalf("hopdb-build on mutated graph: %v\n%s", err, out)
	}
	cmd = exec.Command(queryBin, "-idx", idx2)
	cmd.Stdin = strings.NewReader("0 4\n1 2\n0 3\n")
	qout2, err := cmd.Output()
	if err != nil {
		t.Fatalf("hopdb-query on rebuilt index: %v", err)
	}
	if string(qout2) != string(qout) {
		t.Errorf("patched and rebuilt answers differ: %q vs %q", qout, qout2)
	}

	// A malformed delta exits 3.
	if err := os.WriteFile(deltaPath, []byte("* 0 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err = exec.Command(updateBin, "-idx", idxPath, "-graph", graphPath,
		"-delta", deltaPath, "-o", patched).Run()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 3 {
		t.Errorf("malformed delta: %v, want exit 3", err)
	}
	// Missing required flags exit 2.
	err = exec.Command(updateBin, "-idx", idxPath).Run()
	if !errors.As(err, &ee) || ee.ExitCode() != 2 {
		t.Errorf("missing flags: %v, want exit 2", err)
	}
}
