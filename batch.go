package hopdb

import (
	"sync"

	"repro/internal/wire"
)

// QueryPair is one (source, target) request for DistanceBatch. It is the
// pair type of the Querier batch contract, shared by every backend.
type QueryPair = wire.QueryPair

// DistanceBatch answers many queries, sharding them across workers
// goroutines (<= 1 runs serially). Queries run over the immutable flat
// CSR labels (or the bit-parallel index when enabled), which are
// read-only during queries, so concurrent access is safe — including on
// a memory-mapped index from Open with WithMmap; results[i] corresponds
// to pairs[i], with Infinity for unreachable pairs. Throughput-oriented
// callers (batch analytics, betweenness estimation) should prefer this
// over a Distance loop.
func (x *Index) DistanceBatch(pairs []QueryPair, workers int) []uint32 {
	return x.DistanceBatchInto(make([]uint32, len(pairs)), pairs, workers)
}

// DistanceBatchInto is DistanceBatch writing into a caller-provided
// results slice (len(results) must be >= len(pairs)), so throughput
// servers can recycle buffers across requests instead of allocating per
// batch. It returns results[:len(pairs)].
func (x *Index) DistanceBatchInto(results []uint32, pairs []QueryPair, workers int) []uint32 {
	return batchInto(results, pairs, workers, func(pairs []QueryPair, results []uint32) {
		for i, p := range pairs {
			results[i], _ = x.Distance(p.S, p.T)
		}
	})
}

// batchInto is the shared batch skeleton behind every local backend's
// DistanceBatchInto: it shards pairs into contiguous chunks across up to
// workers goroutines and invokes run once per chunk (so a backend can
// hold per-worker scratch state for the whole chunk). run must be safe
// for concurrent invocation; results[i] answers pairs[i].
func batchInto(results []uint32, pairs []QueryPair, workers int, run func(pairs []QueryPair, results []uint32)) []uint32 {
	results = results[:len(pairs)]
	if len(pairs) == 0 {
		return results
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if workers <= 1 {
		run(pairs, results)
		return results
	}
	var wg sync.WaitGroup
	chunk := (len(pairs) + workers - 1) / workers
	for lo := 0; lo < len(pairs); lo += chunk {
		hi := lo + chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			run(pairs[lo:hi], results[lo:hi])
		}(lo, hi)
	}
	wg.Wait()
	return results
}
