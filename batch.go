package hopdb

import "sync"

// QueryPair is one (source, target) request for DistanceBatch.
type QueryPair struct {
	S, T int32
}

// DistanceBatch answers many queries, sharding them across workers
// goroutines (<= 1 runs serially). Queries run over the immutable flat
// CSR labels (or the bit-parallel index when enabled), which are
// read-only during queries, so concurrent access is safe — including on
// a memory-mapped index from LoadIndexFlat; results[i] corresponds to
// pairs[i], with Infinity for unreachable pairs. Throughput-oriented
// callers (batch analytics, betweenness estimation) should prefer this
// over a Distance loop.
func (x *Index) DistanceBatch(pairs []QueryPair, workers int) []uint32 {
	return x.DistanceBatchInto(make([]uint32, len(pairs)), pairs, workers)
}

// DistanceBatchInto is DistanceBatch writing into a caller-provided
// results slice (len(results) must be >= len(pairs)), so throughput
// servers can recycle buffers across requests instead of allocating per
// batch. It returns results[:len(pairs)].
func (x *Index) DistanceBatchInto(results []uint32, pairs []QueryPair, workers int) []uint32 {
	results = results[:len(pairs)]
	if len(pairs) == 0 {
		return results
	}
	if workers <= 1 {
		for i, p := range pairs {
			results[i], _ = x.Distance(p.S, p.T)
		}
		return results
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}
	var wg sync.WaitGroup
	chunk := (len(pairs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				results[i], _ = x.Distance(pairs[i].S, pairs[i].T)
			}
		}(lo, hi)
	}
	wg.Wait()
	return results
}
