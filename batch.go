package hopdb

import (
	"sync"
	"sync/atomic"

	"repro/internal/label"
	"repro/internal/wire"
)

// QueryPair is one (source, target) request for DistanceBatch. It is the
// pair type of the Querier batch contract, shared by every backend.
type QueryPair = wire.QueryPair

// DistanceBatch answers many queries, sharding them across workers
// goroutines (<= 1 runs serially). Queries run over the immutable flat
// CSR labels (or the bit-parallel index when enabled), which are
// read-only during queries, so concurrent access is safe — including on
// a memory-mapped index from Open with WithMmap; results[i] corresponds
// to pairs[i], with Infinity for unreachable pairs. Throughput-oriented
// callers (batch analytics, betweenness estimation) should prefer this
// over a Distance loop.
func (x *Index) DistanceBatch(pairs []QueryPair, workers int) []uint32 {
	return x.DistanceBatchInto(make([]uint32, len(pairs)), pairs, workers)
}

// DistanceBatchInto is DistanceBatch writing into a caller-provided
// results slice (len(results) must be >= len(pairs)), so throughput
// servers can recycle buffers across requests instead of allocating per
// batch. It returns results[:len(pairs)].
//
// When the compact kernel serves point queries, large batches take a
// locality-scheduled path: pairs are processed in source-rank order (so
// consecutive queries reuse the same out-row while it is cache-hot) and
// each worker prefetches the next pair's label rows while the current
// merge runs. Answers and their placement in results are identical to
// the plain path.
func (x *Index) DistanceBatchInto(results []uint32, pairs []QueryPair, workers int) []uint32 {
	if ck := x.ck.Load(); ck != nil && x.bp.Load() == nil && len(pairs) >= compactBatchMin {
		return x.compactBatchInto(results, pairs, workers, ck)
	}
	return batchInto(results, pairs, workers, func(pairs []QueryPair, results []uint32) {
		for i, p := range pairs {
			results[i], _ = x.Distance(p.S, p.T)
		}
	})
}

// compactBatchMin is the batch size below which the scheduling pass that
// buys source-row locality costs more than the cache misses it avoids.
const compactBatchMin = 64

// batchBuckets is the number of source-rank buckets the scheduler
// distributes a batch over. Each bucket spans a 1/batchBuckets slice of
// the packed key array, so pairs in the same bucket read label rows from
// the same small region even though the bucket itself is unordered.
const batchBuckets = 256

// batchScratch is the pooled working state of one scheduled batch: the
// bucket-ordered permutation and the per-pair precomputed rank ids
// (rank translation costs two dependent loads per id, so it is paid once
// here instead of in the query, the prefetch, and the sort).
type batchScratch struct {
	perm   []int32
	rs, rt []int32
	counts [batchBuckets + 1]int32
}

// batchScratchPool recycles scheduler scratch across batches so the
// scheduled path stays allocation-free at steady state.
var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// prefetchSink consumes the prefetch probe values so the loads cannot be
// eliminated as dead. The guard value makes the store essentially never
// taken, and it is atomic for the rare collision, so concurrent workers
// remain race-detector clean.
var prefetchSink atomic.Uint32

// compactBatchInto runs a batch through the compact kernel in coarse
// source-rank order with next-pair prefetch, scattering each answer back
// to its original position. Ordering is a counting sort into
// batchBuckets rank ranges — O(pairs) with two cheap passes, where a
// comparison sort on a batch this size would cost more than the locality
// it buys.
func (x *Index) compactBatchInto(results []uint32, pairs []QueryPair, workers int, c *label.CompactIndex) []uint32 {
	results = results[:len(pairs)]
	sc := batchScratchPool.Get().(*batchScratch)
	if cap(sc.perm) < len(pairs) {
		sc.perm = make([]int32, len(pairs))
		sc.rs = make([]int32, len(pairs))
		sc.rt = make([]int32, len(pairs))
	}
	perm := sc.perm[:len(pairs)]
	rs := sc.rs[:len(pairs)]
	rt := sc.rt[:len(pairs)]
	counts := &sc.counts
	*counts = [batchBuckets + 1]int32{}
	// Pass 1: resolve rank ids (invalid pairs park at rs = -1) and count
	// bucket occupancy. Buckets partition rank space evenly, so bucket k
	// holds sources whose packed rows live in the k-th slice of OutKeys.
	n64 := uint64(c.N)
	for i, p := range pairs {
		if p.S < 0 || p.T < 0 || p.S >= c.N || p.T >= c.N {
			rs[i] = -1
			counts[batchBuckets]++
			continue
		}
		r := c.Rank(p.S)
		rs[i] = r
		rt[i] = c.Rank(p.T)
		counts[uint64(r)*batchBuckets/n64]++
	}
	// Pass 2: prefix-sum the counts and scatter pair ids into bucket
	// order (invalid pairs land in the trailing pseudo-bucket).
	var sum int32
	for b := range counts {
		counts[b], sum = sum, sum+counts[b]
	}
	for i := range pairs {
		b := uint64(batchBuckets)
		if rs[i] >= 0 {
			b = uint64(rs[i]) * batchBuckets / n64
		}
		perm[counts[b]] = int32(i)
		counts[b]++
	}
	run := func(ids []int32) {
		var sink uint32
		for k, id := range ids {
			if k+1 < len(ids) {
				if nxt := ids[k+1]; rs[nxt] >= 0 {
					sink ^= c.PrefetchRanked(rs[nxt], rt[nxt])
				}
			}
			if rs[id] < 0 {
				results[id] = Infinity
				continue
			}
			results[id] = c.DistanceRanked(rs[id], rt[id])
		}
		if sink == 0x9e3779b9 {
			prefetchSink.Store(sink)
		}
	}
	if workers > len(perm) {
		workers = len(perm)
	}
	if workers <= 1 {
		run(perm)
	} else {
		var wg sync.WaitGroup
		chunk := (len(perm) + workers - 1) / workers
		for lo := 0; lo < len(perm); lo += chunk {
			hi := lo + chunk
			if hi > len(perm) {
				hi = len(perm)
			}
			wg.Add(1)
			go func(ids []int32) {
				defer wg.Done()
				run(ids)
			}(perm[lo:hi])
		}
		wg.Wait()
	}
	batchScratchPool.Put(sc)
	return results
}

// batchInto is the shared batch skeleton behind every local backend's
// DistanceBatchInto: it shards pairs into contiguous chunks across up to
// workers goroutines and invokes run once per chunk (so a backend can
// hold per-worker scratch state for the whole chunk). run must be safe
// for concurrent invocation; results[i] answers pairs[i].
func batchInto(results []uint32, pairs []QueryPair, workers int, run func(pairs []QueryPair, results []uint32)) []uint32 {
	results = results[:len(pairs)]
	if len(pairs) == 0 {
		return results
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if workers <= 1 {
		run(pairs, results)
		return results
	}
	var wg sync.WaitGroup
	chunk := (len(pairs) + workers - 1) / workers
	for lo := 0; lo < len(pairs); lo += chunk {
		hi := lo + chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			run(pairs[lo:hi], results[lo:hi])
		}(lo, hi)
	}
	wg.Wait()
	return results
}
