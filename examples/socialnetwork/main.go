// Social network example: index a GLP-generated scale-free friendship
// graph (the structure of the paper's Delicious/Flickr datasets), compare
// query latency against index-free bidirectional BFS, and use distance
// queries for a classic application from the paper's introduction:
// finding the most central of a set of candidate influencers.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	hopdb "repro"
	"repro/internal/gen"
	"repro/internal/sp"
)

func main() {
	const n = 20000
	g, err := gen.GLP(gen.DefaultGLP(n, 8, 42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("social graph: %v\n", g)

	start := time.Now()
	idx, stats, err := hopdb.Build(g, hopdb.Options{Method: hopdb.Hybrid})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index built in %v: %d entries, %.1f per vertex, %.2f MB\n",
		time.Since(start).Round(time.Millisecond), stats.Entries, idx.AvgLabel(),
		float64(idx.SizeBytes())/(1<<20))

	// Optional: bit-parallel acceleration for undirected unweighted
	// graphs (paper Section 6).
	if err := idx.EnableBitParallel(0); err != nil {
		log.Fatal(err)
	}

	// Latency comparison on random friend-distance queries.
	rng := rand.New(rand.NewSource(7))
	const q = 2000
	pairs := make([][2]int32, q)
	for i := range pairs {
		pairs[i] = [2]int32{rng.Int31n(n), rng.Int31n(n)}
	}
	bi := sp.NewBiSearcher(g)
	start = time.Now()
	for _, p := range pairs {
		bi.Distance(p[0], p[1])
	}
	biDur := time.Since(start)
	start = time.Now()
	for _, p := range pairs {
		idx.Distance(p[0], p[1])
	}
	idxDur := time.Since(start)
	fmt.Printf("%d queries: bidirectional BFS %v (%.1f us/q), index %v (%.2f us/q), speedup %.0fx\n",
		q, biDur.Round(time.Millisecond), biDur.Seconds()/q*1e6,
		idxDur.Round(time.Millisecond), idxDur.Seconds()/q*1e6,
		biDur.Seconds()/idxDur.Seconds())

	// Influencer selection: among candidate accounts, pick the one with
	// the smallest average distance to a sample of users. The workload
	// goes through the backend-agnostic Querier batch path (one reused
	// results buffer, sharded across workers) — swap the index for a
	// disk or remote backend from hopdb.Open and this code is unchanged.
	var querier hopdb.Querier = idx
	candidates := []int32{0, 1, 2, 3, 4, 5, 6, 7}
	sample := make([]int32, 500)
	for i := range sample {
		sample[i] = rng.Int31n(n)
	}
	batch := make([]hopdb.QueryPair, len(sample))
	dists := make([]uint32, len(sample))
	best, bestAvg := int32(-1), 1e18
	for _, c := range candidates {
		for i, u := range sample {
			batch[i] = hopdb.QueryPair{S: c, T: u}
		}
		querier.DistanceBatchInto(dists, batch, 4)
		total, reached := 0.0, 0
		for _, d := range dists {
			if d != hopdb.Infinity {
				total += float64(d)
				reached++
			}
		}
		if reached == 0 {
			continue
		}
		avg := total / float64(reached)
		fmt.Printf("candidate %5d: avg distance %.3f to %d reachable users\n", c, avg, reached)
		if avg < bestAvg {
			best, bestAvg = c, avg
		}
	}
	fmt.Printf("most central influencer: %d (avg distance %.3f)\n", best, bestAvg)
}
