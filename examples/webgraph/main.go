// Web graph example: directed distance querying over a power-law link
// graph (the structure of the paper's wikiEng/Baidu datasets). Directed
// graphs get separate in- and out-labels, queries respect edge direction,
// and the index is persisted and re-opened from disk to demonstrate the
// paper's disk-resident querying mode.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	hopdb "repro"
	"repro/internal/gen"
)

func main() {
	const n = 15000
	g, err := gen.PowerLaw(gen.PowerLawParams{
		N: n, Density: 6, Alpha: 2.2, Directed: true, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("web graph: %v\n", g)

	// Directed graphs default to the paper's in*out degree-product
	// ranking.
	idx, stats, err := hopdb.Build(g, hopdb.Options{Method: hopdb.Hybrid})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: %d entries in %d iterations, %.1f per vertex\n",
		stats.Entries, stats.Iterations, idx.AvgLabel())

	// Directionality: hops from a page vs hops back to it.
	rng := rand.New(rand.NewSource(3))
	shown := 0
	for shown < 5 {
		s, t := rng.Int31n(n), rng.Int31n(n)
		fwd, okF := idx.Distance(s, t)
		back, okB := idx.Distance(t, s)
		if !okF && !okB {
			continue
		}
		fmtDist := func(d uint32, ok bool) string {
			if !ok {
				return "unreachable"
			}
			return fmt.Sprintf("%d", d)
		}
		fmt.Printf("page %5d -> %5d: %s clicks; reverse: %s\n",
			s, t, fmtDist(fwd, okF), fmtDist(back, okB))
		shown++
	}

	// Persist, then query from disk with block I/O accounting: the mode
	// that lets indexes larger than RAM serve queries.
	dir, err := os.MkdirTemp("", "hopdb-web-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	diskPath := filepath.Join(dir, "web.didx")
	if err := idx.SaveDiskIndex(diskPath); err != nil {
		log.Fatal(err)
	}
	dx, err := hopdb.OpenDiskIndex(diskPath, hopdb.DiskOptions{CacheLabels: 64})
	if err != nil {
		log.Fatal(err)
	}
	defer dx.Close()
	const q = 1000
	mismatches := 0
	for i := 0; i < q; i++ {
		s, t := rng.Int31n(n), rng.Int31n(n)
		want, _ := idx.Distance(s, t)
		got, err := dx.Distance(s, t)
		if err != nil {
			log.Fatal(err)
		}
		if got != want {
			mismatches++
		}
	}
	fmt.Printf("disk index: %d queries, %d mismatches, %.2f block reads/query\n",
		q, mismatches, float64(dx.IOs())/float64(q))
}
