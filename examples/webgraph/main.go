// Web graph example: directed distance querying over a power-law link
// graph (the structure of the paper's wikiEng/Baidu datasets). Directed
// graphs get separate in- and out-labels, queries respect edge direction,
// and the index is persisted and re-opened from disk to demonstrate the
// paper's disk-resident querying mode.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	hopdb "repro"
	"repro/internal/gen"
)

func main() {
	const n = 15000
	g, err := gen.PowerLaw(gen.PowerLawParams{
		N: n, Density: 6, Alpha: 2.2, Directed: true, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("web graph: %v\n", g)

	// Directed graphs default to the paper's in*out degree-product
	// ranking.
	idx, stats, err := hopdb.Build(g, hopdb.Options{Method: hopdb.Hybrid})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: %d entries in %d iterations, %.1f per vertex\n",
		stats.Entries, stats.Iterations, idx.AvgLabel())

	// Directionality: hops from a page vs hops back to it.
	rng := rand.New(rand.NewSource(3))
	shown := 0
	for shown < 5 {
		s, t := rng.Int31n(n), rng.Int31n(n)
		fwd, okF := idx.Distance(s, t)
		back, okB := idx.Distance(t, s)
		if !okF && !okB {
			continue
		}
		fmtDist := func(d uint32, ok bool) string {
			if !ok {
				return "unreachable"
			}
			return fmt.Sprintf("%d", d)
		}
		fmt.Printf("page %5d -> %5d: %s clicks; reverse: %s\n",
			s, t, fmtDist(fwd, okF), fmtDist(back, okB))
		shown++
	}

	// Persist, then query from disk with block I/O accounting: the mode
	// that lets indexes larger than RAM serve queries. hopdb.Open hands
	// back the same Querier contract the in-memory index satisfies, so
	// the two are drop-in interchangeable.
	dir, err := os.MkdirTemp("", "hopdb-web-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	diskPath := filepath.Join(dir, "web.didx")
	if err := idx.SaveDiskIndex(diskPath); err != nil {
		log.Fatal(err)
	}
	dq, err := hopdb.Open(diskPath, hopdb.WithDisk(hopdb.DiskOptions{CacheLabels: 64}))
	if err != nil {
		log.Fatal(err)
	}
	defer dq.Close()
	const q = 1000
	pairs := make([]hopdb.QueryPair, q)
	for i := range pairs {
		pairs[i] = hopdb.QueryPair{S: rng.Int31n(n), T: rng.Int31n(n)}
	}
	// Both backends answer through the shared batch path.
	fromMem := idx.DistanceBatch(pairs, 4)
	fromDisk := dq.DistanceBatchInto(make([]uint32, q), pairs, 4)
	mismatches := 0
	for i := range pairs {
		if fromMem[i] != fromDisk[i] {
			mismatches++
		}
	}
	fmt.Printf("disk backend (%s): %d queries, %d mismatches, %.2f block reads/query\n",
		dq.Stats().Backend, q, mismatches, float64(hopdb.Disk(dq).IOs())/float64(q))
}
