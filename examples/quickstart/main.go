// Quickstart: build an index over the paper's Figure 3 graph and answer
// the queries worked through in Examples 1 and 2, then reconstruct a
// shortest path.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	hopdb "repro"
)

func main() {
	// The paper's Figure 3(a): a small directed graph whose vertices
	// are already numbered by rank (0 = highest degree).
	b := hopdb.NewGraphBuilder(true, false)
	edges := [][2]int32{
		{0, 1}, {1, 0}, {2, 0}, {2, 3}, {3, 1}, {4, 5}, {5, 3},
		{0, 6}, {2, 6}, {3, 7}, {7, 2}, {4, 0}, {4, 1},
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1], 1)
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	idx, stats, err := hopdb.Build(g, hopdb.Options{
		// Rank by vertex id to match the paper's numbering exactly.
		Rank: hopdb.RankByID, RankSet: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %v\n", g)
	fmt.Printf("index: %d entries in %d iterations (%.1f per vertex)\n\n",
		stats.Entries, stats.Iterations, idx.AvgLabel())

	queries := [][2]int32{{4, 2}, {7, 0}, {5, 1}, {2, 7}, {6, 0}}
	for _, q := range queries {
		d, ok := idx.Distance(q[0], q[1])
		if !ok {
			fmt.Printf("dist(%d, %d) = unreachable\n", q[0], q[1])
			continue
		}
		path, err := idx.Path(q[0], q[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("dist(%d, %d) = %d via %v\n", q[0], q[1], d, path)
	}

	// Persist the index and reopen it through hopdb.Open, the
	// backend-agnostic entry point: the loaded Querier answers exactly
	// what the freshly built index answers.
	dir, err := os.MkdirTemp("", "hopdb-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	idxPath := filepath.Join(dir, "figure3.idx")
	if err := idx.Save(idxPath); err != nil {
		log.Fatal(err)
	}
	q, err := hopdb.Open(idxPath, hopdb.WithMmap())
	if err != nil {
		log.Fatal(err)
	}
	defer q.Close()
	d, ok := q.Distance(4, 2)
	fmt.Printf("\nreopened via Open(%s backend): dist(4, 2) = %d, reachable=%v\n",
		q.Stats().Backend, d, ok)
}
