// Road network example: the paper's Section 7 discussion of general
// (non-scale-free) graphs. A weighted grid has no hubs, so degree ranking
// is uninformative; the algorithms still work with any total ranking.
// This example compares the default degree ranking against a coordinate
// "betweenness-like" heuristic ranking (center cells outrank the rim) and
// reports label sizes for both, plus weighted shortest-path queries with
// path reconstruction.
package main

import (
	"fmt"
	"log"

	hopdb "repro"
	"repro/internal/gen"
)

const (
	rows = 60
	cols = 60
)

func main() {
	g, err := gen.GridRoad(rows, cols, 9, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("road network: %v (grid %dx%d, weights 1..9)\n", g, rows, cols)

	// Default ranking (degree): nearly uniform on a grid.
	byDegree, stDeg, err := hopdb.Build(g, hopdb.Options{Method: hopdb.Hybrid})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("degree ranking:  %7d entries, %5.1f per vertex, %d iterations\n",
		stDeg.Entries, byDegree.AvgLabel(), stDeg.Iterations)

	// Heuristic ranking: centrality proxy. Cells near the grid center
	// lie on many shortest paths, like the hub in the paper's Figure 1
	// road example, so rank them highest.
	idxCenter, stCenter, err := buildWithCenterRank(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("center ranking:  %7d entries, %5.1f per vertex, %d iterations\n",
		stCenter.Entries, idxCenter.AvgLabel(), stCenter.Iterations)

	// Weighted queries with path reconstruction.
	id := func(r, c int32) int32 { return r*cols + c }
	trips := [][2]int32{
		{id(0, 0), id(rows-1, cols-1)},
		{id(0, cols-1), id(rows-1, 0)},
		{id(rows/2, 0), id(rows/2, cols-1)},
	}
	for _, trip := range trips {
		d, ok := idxCenter.Distance(trip[0], trip[1])
		if !ok {
			fmt.Printf("trip %d -> %d: unreachable\n", trip[0], trip[1])
			continue
		}
		path, err := idxCenter.Path(trip[0], trip[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trip %d -> %d: cost %d over %d road segments\n",
			trip[0], trip[1], d, len(path)-1)
	}

	// Cross-check the two indexes agree (both are exact), through the
	// backend-agnostic Querier batch contract both satisfy.
	var pairs []hopdb.QueryPair
	for s := int32(0); s < g.N(); s += 97 {
		for t := int32(0); t < g.N(); t += 89 {
			pairs = append(pairs, hopdb.QueryPair{S: s, T: t})
		}
	}
	answers := func(q hopdb.Querier) []uint32 {
		return q.DistanceBatchInto(make([]uint32, len(pairs)), pairs, 4)
	}
	a, b := answers(byDegree), answers(idxCenter)
	mismatch := 0
	for i := range pairs {
		if a[i] != b[i] {
			mismatch++
		}
	}
	fmt.Printf("cross-check: %d mismatches between rankings over %d pairs (both exact)\n",
		mismatch, len(pairs))
}

// buildWithCenterRank ranks vertices by negative distance-to-center and
// builds the index through the library's custom ranking hook; queries
// stay in the original grid ids.
func buildWithCenterRank(g *hopdb.Graph) (*hopdb.Index, hopdb.Stats, error) {
	keys := make([]int64, g.N())
	for r := int32(0); r < rows; r++ {
		for c := int32(0); c < cols; c++ {
			dr, dc := int64(r-rows/2), int64(c-cols/2)
			// Larger key = higher rank: prefer small center distance.
			keys[r*cols+c] = -(dr*dr + dc*dc)
		}
	}
	return hopdb.Build(g, hopdb.Options{RankKeys: keys})
}
