package hopdb_test

// The external-memory builder property: its output is not just
// query-equivalent but BYTE-identical to the in-memory builder's. The
// shard pipeline leans on this — shard files are cut from the external
// builder's record streams and must reassemble into exactly the index
// an in-memory build would have produced.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	hopdb "repro"
)

// TestExternalBuildByteIdentical builds every conformance graph shape
// with both builders and demands the saved index files match byte for
// byte — same ranks, same labels, same order, same encoding. The tiny
// memory budget forces real external merge passes rather than a
// degenerate all-in-RAM run.
func TestExternalBuildByteIdentical(t *testing.T) {
	for _, gc := range confGraphs() {
		t.Run(gc.name, func(t *testing.T) {
			g := gc.build(t)
			mem, _, err := hopdb.Build(g, hopdb.Options{})
			if err != nil {
				t.Fatal(err)
			}
			ext, _, err := hopdb.Build(g, hopdb.Options{
				External:     true,
				MemoryBudget: 1024,
				BlockSize:    64,
			})
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			memPath := filepath.Join(dir, "mem.idx")
			extPath := filepath.Join(dir, "ext.idx")
			if err := mem.Save(memPath); err != nil {
				t.Fatal(err)
			}
			if err := ext.Save(extPath); err != nil {
				t.Fatal(err)
			}
			mb, err := os.ReadFile(memPath)
			if err != nil {
				t.Fatal(err)
			}
			eb, err := os.ReadFile(extPath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(mb, eb) {
				t.Fatalf("external build diverges from in-memory build: %d vs %d bytes (first difference at offset %d)",
					len(eb), len(mb), firstDiff(mb, eb))
			}
		})
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
