package hopdb_test

import (
	"fmt"

	hopdb "repro"
)

// Build an index over a small undirected graph and query it.
func ExampleBuild() {
	b := hopdb.NewGraphBuilder(false, false)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(0, 3, 1)
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	idx, stats, err := hopdb.Build(g, hopdb.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("entries:", stats.Entries)
	d, ok := idx.Distance(2, 3)
	fmt.Println(d, ok)
	// Output:
	// entries: 4
	// 3 true
}

// Directed graphs answer queries per direction.
func ExampleIndex_Distance() {
	b := hopdb.NewGraphBuilder(true, false)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	idx, _, err := hopdb.Build(g, hopdb.Options{})
	if err != nil {
		panic(err)
	}
	d, ok := idx.Distance(0, 2)
	fmt.Println(d, ok)
	_, ok = idx.Distance(2, 0)
	fmt.Println(ok)
	// Output:
	// 2 true
	// false
}

// Shortest paths (not just distances) can be reconstructed.
func ExampleIndex_Path() {
	b := hopdb.NewGraphBuilder(false, true)
	b.AddEdge(0, 1, 5)
	b.AddEdge(1, 2, 5)
	b.AddEdge(0, 3, 1)
	b.AddEdge(3, 2, 1)
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	idx, _, err := hopdb.Build(g, hopdb.Options{})
	if err != nil {
		panic(err)
	}
	path, err := idx.Path(0, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println(path)
	// Output:
	// [0 3 2]
}
