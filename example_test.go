package hopdb_test

import (
	"fmt"
	"os"
	"path/filepath"

	hopdb "repro"
)

// Open is the single entry point for querying a saved index: the same
// file serves from the heap, memory-mapped, or (in its disk format) from
// disk blocks, all through the backend-agnostic Querier contract.
func Example_open() {
	b := hopdb.NewGraphBuilder(false, false)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(0, 3, 1)
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	idx, _, err := hopdb.Build(g, hopdb.Options{})
	if err != nil {
		panic(err)
	}

	dir, err := os.MkdirTemp("", "hopdb-example-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	idxPath := filepath.Join(dir, "g.idx")
	diskPath := filepath.Join(dir, "g.didx")
	if err := idx.Save(idxPath); err != nil {
		panic(err)
	}
	if err := idx.SaveDiskIndex(diskPath); err != nil {
		panic(err)
	}

	// Three regimes, one contract, identical answers.
	backends := []struct {
		path string
		opts []hopdb.OpenOption
	}{
		{idxPath, nil},
		{idxPath, []hopdb.OpenOption{hopdb.WithMmap()}},
		{diskPath, []hopdb.OpenOption{hopdb.WithDisk(hopdb.DiskOptions{})}},
	}
	for _, be := range backends {
		q, err := hopdb.Open(be.path, be.opts...)
		if err != nil {
			panic(err)
		}
		d, ok := q.Distance(2, 3)
		fmt.Printf("%s: dist(2,3) = %d %v\n", q.Stats().Backend, d, ok)
		q.Close()
	}
	// Output:
	// heap: dist(2,3) = 3 true
	// mmap: dist(2,3) = 3 true
	// disk: dist(2,3) = 3 true
}

// Build an index over a small undirected graph and query it.
func ExampleBuild() {
	b := hopdb.NewGraphBuilder(false, false)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(0, 3, 1)
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	idx, stats, err := hopdb.Build(g, hopdb.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("entries:", stats.Entries)
	d, ok := idx.Distance(2, 3)
	fmt.Println(d, ok)
	// Output:
	// entries: 4
	// 3 true
}

// Directed graphs answer queries per direction.
func ExampleIndex_Distance() {
	b := hopdb.NewGraphBuilder(true, false)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	idx, _, err := hopdb.Build(g, hopdb.Options{})
	if err != nil {
		panic(err)
	}
	d, ok := idx.Distance(0, 2)
	fmt.Println(d, ok)
	_, ok = idx.Distance(2, 0)
	fmt.Println(ok)
	// Output:
	// 2 true
	// false
}

// Shortest paths (not just distances) can be reconstructed.
func ExampleIndex_Path() {
	b := hopdb.NewGraphBuilder(false, true)
	b.AddEdge(0, 1, 5)
	b.AddEdge(1, 2, 5)
	b.AddEdge(0, 3, 1)
	b.AddEdge(3, 2, 1)
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	idx, _, err := hopdb.Build(g, hopdb.Options{})
	if err != nil {
		panic(err)
	}
	path, err := idx.Path(0, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println(path)
	// Output:
	// [0 3 2]
}
