package hopdb

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/bitparallel"
	"repro/internal/core"
	"repro/internal/diskidx"
	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/order"
)

// Graph is the immutable CSR graph all builders consume.
type Graph = graph.Graph

// GraphBuilder accumulates edges; see NewGraphBuilder.
type GraphBuilder = graph.Builder

// Infinity is returned (with ok=false) for unreachable pairs.
const Infinity = graph.Infinity

// NewGraphBuilder returns a builder for a directed/undirected,
// weighted/unweighted graph. Self-loops are dropped and parallel edges
// are collapsed to their minimum weight.
func NewGraphBuilder(directed, weighted bool) *GraphBuilder {
	return graph.NewBuilder(directed, weighted)
}

// LoadEdgeList reads a text edge list ("u v" or "u v w" lines, '#'/'%'
// comments) from a file.
func LoadEdgeList(path string, directed, weighted bool) (*Graph, error) {
	return graph.LoadEdgeListFile(path, directed, weighted)
}

// SaveEdgeList writes g as a text edge list.
func SaveEdgeList(path string, g *Graph) error {
	return graph.SaveEdgeListFile(path, g)
}

// Method selects the construction schedule.
type Method = core.Method

// Construction schedules (paper Sections 3 and 5).
const (
	// Hybrid steps for Options.SwitchIteration iterations, then
	// doubles: the paper's default.
	Hybrid = core.Hybrid
	// Doubling joins new labels against the whole index each
	// iteration.
	Doubling = core.Doubling
	// Stepping joins new labels against single edges each iteration.
	Stepping = core.Stepping
)

// RankStrategy selects the vertex ordering that drives pivot selection.
type RankStrategy = order.Strategy

// Ranking strategies (paper Section 2.1).
const (
	// RankByDegree orders by non-increasing degree (paper default for
	// undirected graphs).
	RankByDegree = order.ByDegree
	// RankByDegreeProduct orders by in-degree*out-degree (paper default
	// for directed graphs).
	RankByDegreeProduct = order.ByDegreeProduct
	// RankByID keeps the caller's vertex numbering as the ranking.
	RankByID = order.ByID
)

// Options configures Build.
type Options struct {
	// Method is the construction schedule (default Hybrid).
	Method Method
	// SwitchIteration is the stepping-to-doubling switch point for
	// Hybrid builds (default 10, as in the paper).
	SwitchIteration int
	// Rank selects the vertex ordering. Leave zero for the paper's
	// defaults (degree; degree product for directed graphs).
	Rank RankStrategy
	// RankSet marks Rank as deliberately chosen, disabling the
	// directed-graph auto-substitution.
	RankSet bool
	// RankKeys, when non-nil, overrides Rank with one score per vertex:
	// larger key = higher rank. This is the custom-ordering hook for
	// general (non-scale-free) graphs the paper's Section 7 describes.
	RankKeys []int64
	// DisablePruning turns off label pruning (for ablations; labels
	// grow but queries stay correct).
	DisablePruning bool
	// MaxIterations caps construction; 0 runs to fixpoint.
	MaxIterations int
	// CollectStats records per-iteration statistics in Stats.
	CollectStats bool
	// Parallelism shards in-memory construction across goroutines;
	// <= 1 runs serially. Results are identical either way (the clamped
	// effective value is reported in Stats.Workers).
	Parallelism int
	// CheckpointDir, when non-empty, makes the in-memory builder persist
	// its full state to this directory after every completed iteration,
	// so a killed build can be resumed with Resume instead of restarted.
	// In-memory builder only (incompatible with External).
	CheckpointDir string
	// Resume continues a build from the checkpoint in CheckpointDir.
	// The checkpoint must match the graph and the result-affecting
	// options (ErrCheckpointMismatch otherwise; ErrNoCheckpoint when the
	// directory holds none); the resumed index is byte-identical to an
	// uninterrupted build.
	Resume bool

	// External selects the disk-based I/O-efficient builder.
	External bool
	// MemoryBudget is the external builder's record budget M.
	MemoryBudget int
	// BlockSize is the external builder's block size B in records.
	BlockSize int
	// TempDir hosts the external builder's working files.
	TempDir string
}

// Stats reports what construction did; see core.BuildStats.
type Stats = core.BuildStats

// Index answers exact point-to-point distance queries. Queries are served
// from a flat CSR label representation (one contiguous entries array per
// side); the slice-of-slices form is kept only as a read-only view for
// analysis tooling.
//
// # Concurrency
//
// An Index is safe for concurrent use: Distance, DistanceBatch, Path, and
// the size accessors may be called from any number of goroutines, because
// they only read the immutable label arrays (heap-allocated or mmap'd).
// EnableBitParallel and EnableCompact may even be invoked while queries
// are in flight — each accelerated kernel is published atomically, so a
// concurrent query observes either the plain merge-join or the
// accelerated path, all of which return identical exact distances. The
// one ordering requirement is AttachGraph: it must complete before any
// concurrent Path or EnableBitParallel call, since the graph pointer
// itself is not synchronized.
type Index struct {
	flat *label.FlatIndex // query-serving CSR labels
	g    *Graph           // retained for Path; may be nil after Load
	// bp is the optional bit-parallel acceleration, published by a
	// single swap once built.
	//hopdb:atomic
	bp atomic.Pointer[bitparallel.Index]
	// ck is the optional branch-free packed kernel, published the same
	// way.
	//hopdb:atomic
	ck atomic.Pointer[label.CompactIndex]

	// labels is a lazily built read-only view aliasing flat's arrays,
	// materialized only for tooling that wants the nested form; building
	// it eagerly would cost N slice headers (and page in the whole
	// offsets table of an mmap'd index) before the first query.
	viewOnce sync.Once
	labels   *label.Index
}

// newIndex wraps a frozen label set in the public facade.
func newIndex(flat *label.FlatIndex, g *Graph) *Index {
	return &Index{flat: flat, g: g}
}

// view lazily materializes the nested form.
func (x *Index) view() *label.Index {
	x.viewOnce.Do(func() { x.labels = x.flat.View() })
	return x.labels
}

// Checkpoint errors, re-exported from the construction engine for
// errors.Is.
var (
	// ErrNoCheckpoint is returned by a Resume build whose CheckpointDir
	// holds no checkpoint manifest.
	ErrNoCheckpoint = core.ErrNoCheckpoint
	// ErrCheckpointMismatch is returned by a Resume build whose
	// checkpoint was written for a different graph or different
	// result-affecting options.
	ErrCheckpointMismatch = core.ErrCheckpointMismatch
)

// coreOptions maps the public build options onto the engine's.
func coreOptions(opt Options) core.Options {
	return core.Options{
		Method:          opt.Method,
		SwitchIteration: opt.SwitchIteration,
		Rank:            opt.Rank,
		RankSet:         opt.RankSet,
		RankKeys:        opt.RankKeys,
		DisablePruning:  opt.DisablePruning,
		MaxIterations:   opt.MaxIterations,
		CollectStats:    opt.CollectStats,
		Parallelism:     opt.Parallelism,
		CheckpointDir:   opt.CheckpointDir,
		Resume:          opt.Resume,
		MemoryBudget:    opt.MemoryBudget,
		BlockSize:       opt.BlockSize,
		TempDir:         opt.TempDir,
	}
}

// Build constructs an index for g.
func Build(g *Graph, opt Options) (*Index, Stats, error) {
	copt := coreOptions(opt)
	var (
		x   *label.Index
		st  core.BuildStats
		err error
	)
	if opt.External {
		x, st, err = core.BuildExternal(g, copt)
	} else {
		x, st, err = core.Build(g, copt)
	}
	if err != nil {
		return nil, Stats{}, err
	}
	idx := newIndex(label.FreezeParallel(x, opt.Parallelism), g)
	// The packed kernel is auto-enabled whenever the labels are encodable;
	// unencodable labels (a distance beyond 8 bits) keep the scalar kernel
	// with identical answers.
	_ = idx.EnableCompact()
	return idx, st, nil
}

// Distance returns the exact distance from s to t and whether t is
// reachable from s. Vertex ids are the caller's original ids. It is safe
// for concurrent use; see the Index concurrency contract.
func (x *Index) Distance(s, t int32) (uint32, bool) {
	var d uint32
	if bp := x.bp.Load(); bp != nil {
		d = bp.Distance(s, t)
	} else if ck := x.ck.Load(); ck != nil {
		d = ck.Distance(s, t)
	} else {
		d = x.flat.Distance(s, t)
	}
	return d, d != Infinity
}

// N returns the number of indexed vertices.
func (x *Index) N() int32 { return x.flat.N }

// Entries returns the number of non-trivial label entries.
func (x *Index) Entries() int64 { return x.flat.Entries() }

// AvgLabel returns the average label entries per vertex.
func (x *Index) AvgLabel() float64 { return x.flat.AvgLabel() }

// SizeBytes returns the serialized label size in bytes.
func (x *Index) SizeBytes() int64 { return x.flat.SizeBytes() }

// Labels exposes the underlying label index for analysis tooling
// (coverage statistics, serialization formats). It is a read-only view
// aliasing the flat arrays; mutating it corrupts the index.
func (x *Index) Labels() *label.Index { return x.view() }

// Flat exposes the CSR label representation serving queries. Treat it as
// read-only.
func (x *Index) Flat() *label.FlatIndex { return x.flat }

// EnableBitParallel folds the top-ranked hub labels into bit-parallel
// tuples (paper Section 6). Only undirected unweighted indexes qualify;
// roots <= 0 selects the paper's default of 50.
//
// It may be called while queries are running: the transformation works on
// a private copy of the label view and the finished bit-parallel index is
// published with one atomic store, so in-flight Distance calls never see
// a half-built structure.
func (x *Index) EnableBitParallel(roots int) error {
	if x.g == nil {
		return fmt.Errorf("hopdb: bit-parallel transform needs the graph; unavailable on a loaded index")
	}
	bp, err := bitparallel.Transform(x.view(), x.g, bitparallel.Options{Roots: roots})
	if err != nil {
		return err
	}
	x.bp.Store(bp)
	return nil
}

// EnableCompact packs the labels into the branch-free compact query
// kernel: pivot and distance quantized into one 4-byte key per entry,
// rows sentinel-padded to cache-line lanes, and the merge-join replaced
// by a branchless masked-compare intersection. Answers are byte-identical
// to the scalar kernel; only latency changes. It fails when the labels do
// not fit the packed fields (a distance beyond 8 bits — long weighted
// paths — or more than ~16.7M vertices), in which case queries stay on
// the scalar kernel.
//
// Heap indexes opened through Open (and indexes returned by Build)
// enable the compact kernel automatically when encodable; call sites
// only need EnableCompact for mmap-backed indexes (where the packed
// arrays cost heap memory the mmap regime was chosen to avoid, so it is
// opt-in via WithCompactKernel) or after a manual LoadIndex. Like
// EnableBitParallel, it may be called while queries are in flight: the
// packed kernel is published with one atomic store. When bit-parallel
// acceleration is also enabled, it takes precedence.
func (x *Index) EnableCompact() error {
	ck, ok := label.CompactFrom(x.flat)
	if !ok {
		return fmt.Errorf("hopdb: labels exceed the compact kernel's packed fields (distance > %d or vertices > %d)",
			255, 1<<24-1)
	}
	x.ck.Store(ck)
	return nil
}

// Compact exposes the packed kernel arrays of an index with the compact
// kernel enabled, or nil. Treat it as read-only; tooling and tests only.
func (x *Index) Compact() *label.CompactIndex { return x.ck.Load() }

// Save writes the index to path in the v2 flat binary format, whose label
// payload is the CSR arrays verbatim (loadable with LoadIndex or
// memory-mapped with LoadIndexFlat).
func (x *Index) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := x.flat.Write(f); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	return f.Close()
}

// SaveCompact writes the index to path in the v3 compact binary format:
// per-row delta-coded varint entries, typically 2-4x smaller than the v2
// flat image on scale-free graphs. A compact file is for shipping and
// cold storage — LoadIndex and Open accept it (decoding it into memory),
// but it cannot be memory-mapped (WithMmap needs the v2 flat layout).
func (x *Index) SaveCompact(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := x.flat.WriteCompact(f); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	return f.Close()
}

// LoadIndex reads an index saved with Save or SaveCompact. All three
// formats are accepted: a v2 flat file is parsed in place from a single
// read (O(1) allocations for the label payload), a v3 compact file is
// delta-decoded into fresh arrays, and a legacy v1 file is streamed
// entry-by-entry and frozen. Path reconstruction and bit-parallel
// transformation are unavailable until the graph is re-attached with
// AttachGraph.
//
// Deprecated: use Open, the backend-agnostic entry point (Open(path) is
// the heap backend). LoadIndex remains as a thin wrapper and keeps
// working.
func LoadIndex(path string) (*Index, error) { return loadIndex(path) }

// loadIndex is the heap loader behind Open and LoadIndex.
func loadIndex(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var magic [4]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return nil, fmt.Errorf("hopdb: reading %s: %w", path, err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if label.IsFlatImage(magic[:]) || label.IsCompactImage(magic[:]) {
		st, err := f.Stat()
		if err != nil {
			return nil, err
		}
		buf := make([]byte, st.Size())
		if _, err := io.ReadFull(f, buf); err != nil {
			return nil, fmt.Errorf("hopdb: reading %s: %w", path, err)
		}
		var flat *label.FlatIndex
		if label.IsCompactImage(buf) {
			// v3 delta-coded image: decoded, not aliased.
			flat, err = label.ParseCompact(buf)
		} else {
			flat, err = label.ParseFlat(buf)
		}
		if err != nil {
			return nil, err
		}
		return newIndex(flat, nil), nil
	}
	// Legacy v1: stream from the file rather than slurping it, so a big
	// index is only ever resident once (as labels, not also as raw
	// bytes).
	x, err := label.Read(f)
	if err != nil {
		return nil, err
	}
	return newIndex(label.Freeze(x), nil), nil
}

// LoadIndexFlat memory-maps a v2 flat index file: the label payload is
// never copied and loading allocates O(1) memory regardless of index
// size. Opening scans the payload once sequentially to validate the label
// invariants (a corrupt file fails here, not mid-query); after that the
// OS keeps labels paged on demand. The returned index is read-only; call
// Close to release the mapping.
//
// Deprecated: use Open(path, WithMmap()). LoadIndexFlat remains as a
// thin wrapper and keeps working.
func LoadIndexFlat(path string) (*Index, error) { return loadIndexFlat(path) }

// loadIndexFlat is the mmap loader behind Open and LoadIndexFlat.
func loadIndexFlat(path string) (*Index, error) {
	flat, err := label.MmapFlat(path)
	if err != nil {
		return nil, err
	}
	return newIndex(flat, nil), nil
}

// Close releases resources held by a loaded index (the mmap backing a
// LoadIndexFlat index). It is a no-op for built or heap-loaded indexes.
func (x *Index) Close() error { return x.flat.Close() }

// AttachGraph re-associates the original graph with a loaded index,
// enabling Path and EnableBitParallel. It must complete before the index
// is shared across goroutines; see the Index concurrency contract.
func (x *Index) AttachGraph(g *Graph) { x.g = g }

// SaveDiskIndex writes the index in the block-addressable on-disk format
// answered by OpenDiskIndex. The cached nested view aliases the flat
// arrays, so no label entries are copied.
func (x *Index) SaveDiskIndex(path string) error {
	return diskidx.Write(path, x.view())
}

// DiskIndex answers queries directly from an on-disk index; see
// OpenDiskIndex.
type DiskIndex = diskidx.DiskIndex

// DiskOptions tunes disk-index querying.
type DiskOptions = diskidx.Options

// OpenDiskIndex opens an index written by SaveDiskIndex for querying
// without loading the labels into memory.
//
// Deprecated: use Open(path, WithDisk(opt)), which serves the same file
// through the backend-agnostic Querier contract (the underlying
// *DiskIndex stays reachable via Disk). OpenDiskIndex remains as a thin
// wrapper and keeps working.
func OpenDiskIndex(path string, opt DiskOptions) (*DiskIndex, error) {
	return diskidx.Open(path, opt)
}
