// Benchmarks regenerating the paper's evaluation (Section 8). Each
// BenchmarkTable*/BenchmarkFigure* target corresponds to one table or
// figure; run with
//
//	go test -bench=. -benchmem
//
// for the quick suite, or use cmd/hopdb-bench for the full 27-dataset
// sweep with the paper-formatted output. Benchmarks report the paper's
// headline metrics (index entries, avg label size, iterations, queries
// per second) through testing.B metrics.
package hopdb

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/bitparallel"
	"repro/internal/core"
	"repro/internal/diskidx"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/islabel"
	"repro/internal/label"
	"repro/internal/landmark"
	"repro/internal/order"
	"repro/internal/pll"
	"repro/internal/sp"
)

// benchScale keeps `go test -bench` fast; cmd/hopdb-bench runs full size.
const benchScale = 0.5

func mustDataset(b *testing.B, name string) *graph.Graph {
	b.Helper()
	d, ok := bench.DatasetByName(name)
	if !ok {
		b.Fatalf("unknown dataset %s", name)
	}
	g, err := d.Build(benchScale)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func randPairs(n int32, q int, seed int64) [][2]int32 {
	rng := rand.New(rand.NewSource(seed))
	pairs := make([][2]int32, q)
	for i := range pairs {
		pairs[i] = [2]int32{rng.Int31n(n), rng.Int31n(n)}
	}
	return pairs
}

// --- Table 6: indexing time and size per system ------------------------

// BenchmarkTable6IndexingHopDb measures the paper's HopDb disk-based
// build (hybrid schedule, external algorithm).
func BenchmarkTable6IndexingHopDb(b *testing.B) {
	for _, name := range []string{"enron", "slashdot", "syn6", "bookRating"} {
		g := mustDataset(b, name)
		b.Run(name, func(b *testing.B) {
			tmp := b.TempDir()
			var entries int64
			for i := 0; i < b.N; i++ {
				x, st, err := core.BuildExternal(g, core.Options{Method: core.Hybrid, TempDir: tmp})
				if err != nil {
					b.Fatal(err)
				}
				entries = st.Entries
				_ = x
			}
			b.ReportMetric(float64(entries), "entries")
		})
	}
}

// BenchmarkTable6IndexingPLL measures the PLL baseline build.
func BenchmarkTable6IndexingPLL(b *testing.B) {
	for _, name := range []string{"enron", "slashdot", "syn6", "bookRating"} {
		g := mustDataset(b, name)
		b.Run(name, func(b *testing.B) {
			var entries int64
			for i := 0; i < b.N; i++ {
				x, _, err := pll.Build(g, 0, false)
				if err != nil {
					b.Fatal(err)
				}
				entries = x.Entries()
			}
			b.ReportMetric(float64(entries), "entries")
		})
	}
}

// BenchmarkTable6IndexingISLabel measures the IS-Label baseline build
// (with a generous growth budget so the small proxies finish).
func BenchmarkTable6IndexingISLabel(b *testing.B) {
	for _, name := range []string{"enron", "bookRating"} {
		g := mustDataset(b, name)
		b.Run(name, func(b *testing.B) {
			var entries int64
			for i := 0; i < b.N; i++ {
				x, _, err := islabel.Build(g, islabel.Options{MaxEdgeFactor: 64})
				if err != nil {
					b.Skipf("IS-Label DNF (paper behaviour): %v", err)
				}
				entries = x.Entries()
			}
			b.ReportMetric(float64(entries), "entries")
		})
	}
}

// BenchmarkTable6QueryMemory measures memory-resident query latency for
// BIDIJ, PLL, and HopDb on one representative dataset per group.
func BenchmarkTable6QueryMemory(b *testing.B) {
	for _, name := range []string{"enron", "slashdot", "syn6", "bookRating"} {
		g := mustDataset(b, name)
		pairs := randPairs(g.N(), 1024, 99)
		hop, _, err := core.Build(g, core.Options{Method: core.Hybrid})
		if err != nil {
			b.Fatal(err)
		}
		pllIdx, _, err := pll.Build(g, 0, false)
		if err != nil {
			b.Fatal(err)
		}
		bi := sp.NewBiSearcher(g)
		b.Run(name+"/bidij", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				bi.Distance(p[0], p[1])
			}
		})
		b.Run(name+"/pll", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				pllIdx.Distance(p[0], p[1])
			}
		})
		b.Run(name+"/hopdb", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				hop.Distance(p[0], p[1])
			}
		})
	}
}

// BenchmarkTable6QueryDisk measures disk-resident query latency and
// block I/Os per query for HopDb.
func BenchmarkTable6QueryDisk(b *testing.B) {
	g := mustDataset(b, "enron")
	hop, _, err := core.Build(g, core.Options{Method: core.Hybrid})
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "bench.didx")
	if err := diskidx.Write(path, hop); err != nil {
		b.Fatal(err)
	}
	dx, err := diskidx.Open(path, diskidx.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer dx.Close()
	pairs := randPairs(g.N(), 1024, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		if _, err := dx.Distance(p[0], p[1]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(dx.IOs())/float64(b.N), "IOs/query")
}

// --- Table 7: label size and hitting-set coverage ----------------------

// BenchmarkTable7 builds each small-suite dataset and reports the
// paper's Table 7 metrics as benchmark outputs.
func BenchmarkTable7(b *testing.B) {
	for _, d := range bench.SmallSuite() {
		b.Run(d.Name, func(b *testing.B) {
			var row bench.Table7Row
			for i := 0; i < b.N; i++ {
				var err error
				row, err = bench.RunTable7Dataset(d, benchScale)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.AvgLabel, "avg-label")
			b.ReportMetric(float64(row.Iterations), "iterations")
			b.ReportMetric(row.Top90*100, "top90-pct")
		})
	}
}

// --- Table 8: construction schedules ------------------------------------

// BenchmarkTable8 compares Doubling, Stepping, and Hybrid build times.
func BenchmarkTable8(b *testing.B) {
	g := mustDataset(b, "slashdot")
	for _, m := range []core.Method{core.Doubling, core.Stepping, core.Hybrid} {
		b.Run(m.String(), func(b *testing.B) {
			var iters int
			for i := 0; i < b.N; i++ {
				_, st, err := core.Build(g, core.Options{Method: m})
				if err != nil {
					b.Fatal(err)
				}
				iters = st.Iterations
			}
			b.ReportMetric(float64(iters), "iterations")
		})
	}
}

// --- Figure 8: coverage curves ------------------------------------------

// BenchmarkFigure8 computes the coverage curve for one dataset.
func BenchmarkFigure8(b *testing.B) {
	d, _ := bench.DatasetByName("skitter")
	var series []bench.Figure8Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = bench.RunFigure8([]bench.Dataset{d}, benchScale, 11, 0.01)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(series) > 0 {
		last := series[0].Coverage[len(series[0].Coverage)-1]
		b.ReportMetric(last*100, "top1pct-coverage")
	}
}

// --- Figure 9: synthetic scalability ------------------------------------

// BenchmarkFigure9Density sweeps density at fixed |V| (Figure 9a).
func BenchmarkFigure9Density(b *testing.B) {
	for _, den := range []float64{2, 10, 20} {
		b.Run(fmt.Sprintf("density-%v", den), func(b *testing.B) {
			var avg float64
			for i := 0; i < b.N; i++ {
				pts, err := bench.RunFigure9Density(int32(4000*benchScale), []float64{den}, 91)
				if err != nil {
					b.Fatal(err)
				}
				avg = pts[0].AvgLabel
			}
			b.ReportMetric(avg, "avg-label")
		})
	}
}

// BenchmarkFigure9Vertices sweeps |V| at fixed density (Figure 9b).
func BenchmarkFigure9Vertices(b *testing.B) {
	for _, n := range []int32{1000, 2000, 4000} {
		b.Run(fmt.Sprintf("V-%d", n), func(b *testing.B) {
			var avg float64
			for i := 0; i < b.N; i++ {
				pts, err := bench.RunFigure9Vertices([]int32{int32(float64(n) * benchScale)}, 10, 92)
				if err != nil {
					b.Fatal(err)
				}
				avg = pts[0].AvgLabel
			}
			b.ReportMetric(avg, "avg-label")
		})
	}
}

// --- Figure 10: growth and pruning --------------------------------------

// BenchmarkFigure10 traces the per-iteration growing and pruning factors
// on the wikiEng proxy.
func BenchmarkFigure10(b *testing.B) {
	d, _ := bench.DatasetByName("wikiEng")
	var rows []bench.Figure10Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.RunFigure10(d, benchScale, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) > 0 {
		var maxPrune float64
		for _, r := range rows {
			if r.PruningFactor > maxPrune {
				maxPrune = r.PruningFactor
			}
		}
		b.ReportMetric(maxPrune*100, "max-prune-pct")
		b.ReportMetric(float64(len(rows)), "iterations")
	}
}

// --- Ablations (DESIGN.md design choices) --------------------------------

// BenchmarkAblationPruning contrasts builds with and without the pruning
// step (Section 3.3): the design choice the paper credits for the small
// label sizes.
func BenchmarkAblationPruning(b *testing.B) {
	g := mustDataset(b, "syn6")
	for _, disable := range []bool{false, true} {
		name := "pruning-on"
		if disable {
			name = "pruning-off"
		}
		b.Run(name, func(b *testing.B) {
			var entries int64
			for i := 0; i < b.N; i++ {
				x, _, err := core.Build(g, core.Options{Method: core.Hybrid, DisablePruning: disable})
				if err != nil {
					b.Fatal(err)
				}
				entries = x.Entries()
			}
			b.ReportMetric(float64(entries), "entries")
		})
	}
}

// BenchmarkAblationRanking contrasts the paper's degree ranking against
// an arbitrary (id) ranking, quantifying Section 2.1's claim that the
// ordering drives label size.
func BenchmarkAblationRanking(b *testing.B) {
	g := mustDataset(b, "enron")
	type cfg struct {
		name string
		opt  core.Options
	}
	for _, c := range []cfg{
		{"degree", core.Options{Method: core.Hybrid}},
		{"arbitrary", core.Options{Method: core.Hybrid, Rank: order.ByID, RankSet: true}},
	} {
		b.Run(c.name, func(b *testing.B) {
			var entries int64
			for i := 0; i < b.N; i++ {
				x, _, err := core.Build(g, c.opt)
				if err != nil {
					b.Fatal(err)
				}
				entries = x.Entries()
			}
			b.ReportMetric(float64(entries), "entries")
		})
	}
}

// BenchmarkBitParallelQuery contrasts plain 2-hop queries with the
// bit-parallel form (Section 6).
func BenchmarkBitParallelQuery(b *testing.B) {
	g := mustDataset(b, "skitter")
	base, _, err := core.Build(g, core.Options{Method: core.Hybrid})
	if err != nil {
		b.Fatal(err)
	}
	bp, err := bitparallel.Transform(base, g, bitparallel.Options{})
	if err != nil {
		b.Fatal(err)
	}
	pairs := randPairs(g.N(), 1024, 17)
	b.Run("normal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			base.Distance(p[0], p[1])
		}
	})
	b.Run("bitparallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			bp.Distance(p[0], p[1])
		}
	})
}

// BenchmarkExternalVsInMemory measures the I/O-efficient builder against
// the in-memory builder on the same graph (Section 4's overhead).
func BenchmarkExternalVsInMemory(b *testing.B) {
	g := mustDataset(b, "enron")
	b.Run("in-memory", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.Build(g, core.Options{Method: core.Hybrid}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("external", func(b *testing.B) {
		tmp := b.TempDir()
		var ios int64
		for i := 0; i < b.N; i++ {
			_, st, err := core.BuildExternal(g, core.Options{Method: core.Hybrid, TempDir: tmp})
			if err != nil {
				b.Fatal(err)
			}
			ios = st.ReadIOs + st.WriteIOs
		}
		b.ReportMetric(float64(ios), "block-IOs")
	})
}

// BenchmarkDistance contrasts the slice-of-slices label layout with the
// flat CSR layout serving queries (same labels, same merge-join) on the
// scale-free generator graphs: the acceptance target for the flat path is
// >= 1x (aiming for 1.2x) the nested baseline.
func BenchmarkDistance(b *testing.B) {
	graphs := []struct {
		name  string
		build func() (*graph.Graph, error)
	}{
		{"enron", func() (*graph.Graph, error) { return mustDataset(b, "enron"), nil }},
		{"slashdot", func() (*graph.Graph, error) { return mustDataset(b, "slashdot"), nil }},
		{"syn6", func() (*graph.Graph, error) { return mustDataset(b, "syn6"), nil }},
		// A larger generator graph: with labels past cache size the CSR
		// layout's locality advantage shows fully (~1.2x).
		{"glp60k", func() (*graph.Graph, error) {
			return gen.GLP(gen.DefaultGLP(int32(60000*benchScale), 4, 7))
		}},
	}
	for _, gc := range graphs {
		g, err := gc.build()
		if err != nil {
			b.Fatal(err)
		}
		nested, _, err := core.Build(g, core.Options{Method: core.Hybrid})
		if err != nil {
			b.Fatal(err)
		}
		flat := label.Freeze(nested)
		pairs := randPairs(g.N(), 1<<14, 41)
		b.Run(gc.name+"/nested", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				nested.Distance(p[0], p[1])
			}
		})
		b.Run(gc.name+"/flat", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				flat.Distance(p[0], p[1])
			}
		})
		ck, ok := label.CompactFrom(flat)
		if !ok {
			b.Fatalf("%s: labels not compact-encodable", gc.name)
		}
		b.Run(gc.name+"/compact", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				ck.Distance(p[0], p[1])
			}
		})
	}
}

// BenchmarkDistanceBatch measures batch throughput through the Index
// facade: the plain chunked path over the scalar kernel against the
// compact kernel's locality-scheduled path (source-rank sort plus
// next-pair prefetch). The acceptance target for the scheduled path is
// >= 2x pairs/s on the scale-free suite.
func BenchmarkDistanceBatch(b *testing.B) {
	for _, name := range []string{"enron", "slashdot"} {
		g := mustDataset(b, name)
		nested, _, err := core.Build(g, core.Options{Method: core.Hybrid})
		if err != nil {
			b.Fatal(err)
		}
		idx := newIndex(label.Freeze(nested), nil)
		rp := randPairs(g.N(), 1<<14, 83)
		pairs := make([]QueryPair, len(rp))
		for i, p := range rp {
			pairs[i] = QueryPair{S: p[0], T: p[1]}
		}
		results := make([]uint32, len(pairs))
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/scalar/workers-%d", name, workers), func(b *testing.B) {
				idx.ck.Store(nil)
				for i := 0; i < b.N; i++ {
					idx.DistanceBatchInto(results, pairs, workers)
				}
				b.ReportMetric(float64(len(pairs))*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
			})
			b.Run(fmt.Sprintf("%s/compact/workers-%d", name, workers), func(b *testing.B) {
				if err := idx.EnableCompact(); err != nil {
					b.Fatal(err)
				}
				for i := 0; i < b.N; i++ {
					idx.DistanceBatchInto(results, pairs, workers)
				}
				b.ReportMetric(float64(len(pairs))*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
			})
		}
	}
}

// BenchmarkLoadIndex measures loading a saved index: the v2 flat format is
// parsed in place from one read (O(1) allocations for the label payload),
// the v1 stream allocates one slice per vertex per side. Run with
// -benchmem to see the allocation gap.
func BenchmarkLoadIndex(b *testing.B) {
	g := mustDataset(b, "enron")
	nested, _, err := core.Build(g, core.Options{Method: core.Hybrid})
	if err != nil {
		b.Fatal(err)
	}
	flat := label.Freeze(nested)
	dir := b.TempDir()
	v1Path := filepath.Join(dir, "v1.idx")
	v2Path := filepath.Join(dir, "v2.idx")
	writeWith := func(path string, write func(w io.Writer) error) {
		f, err := os.Create(path)
		if err != nil {
			b.Fatal(err)
		}
		if err := write(f); err != nil {
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
	}
	writeWith(v1Path, nested.Write)
	writeWith(v2Path, flat.Write)
	b.Run("v1-nested", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f, err := os.Open(v1Path)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := label.Read(f); err != nil {
				b.Fatal(err)
			}
			f.Close()
		}
	})
	b.Run("v2-flat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := label.LoadFlatFile(v2Path); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("v2-mmap", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			x, err := label.MmapFlat(v2Path)
			if err != nil {
				b.Fatal(err)
			}
			x.Close()
		}
	})
}

// BenchmarkGenerators measures synthetic graph generation throughput.
func BenchmarkGenerators(b *testing.B) {
	b.Run("glp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gen.GLP(gen.DefaultGLP(2000, 5, int64(i))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("powerlaw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gen.PowerLaw(gen.PowerLawParams{N: 2000, Density: 5, Alpha: 2.2, Directed: true, Seed: int64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestMain keeps the benchmark temp space tidy when run via go test.
func TestMain(m *testing.M) {
	os.Exit(m.Run())
}

// BenchmarkLandmarkOracle contrasts the related-work landmark oracle
// (paper Section 2.3, citing Chen et al.) against the exact 2-hop index:
// the estimate is fast but inexact, and the exact refinement falls back
// to bidirectional search.
func BenchmarkLandmarkOracle(b *testing.B) {
	g := mustDataset(b, "enron")
	oracle, _, err := landmark.Build(g, 16)
	if err != nil {
		b.Fatal(err)
	}
	hop, _, err := core.Build(g, core.Options{Method: core.Hybrid})
	if err != nil {
		b.Fatal(err)
	}
	pairs := randPairs(g.N(), 1024, 5)
	b.Run("landmark-estimate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			oracle.Estimate(p[0], p[1])
		}
	})
	b.Run("landmark-exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			oracle.Distance(p[0], p[1])
		}
	})
	b.Run("hopdb", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			hop.Distance(p[0], p[1])
		}
	})
}

// BenchmarkBuildRanked is the build-speed gate: in-memory construction
// of the 30k-vertex GLP acceptance graph, serial and with all cores
// (the ranking is done once outside the timed loop, so the number is
// pure label construction). The benchcmp gate protects these timings
// the same way it protects query latency; the parallel/serial ratio is
// the acceptance metric for the multi-core pipeline (>= 2x on a
// multi-core runner).
func BenchmarkBuildRanked(b *testing.B) {
	g, err := gen.GLP(gen.DefaultGLP(int32(60000*benchScale), 4, 7))
	if err != nil {
		b.Fatal(err)
	}
	ranked, _, err := order.Apply(g, order.ByDegree)
	if err != nil {
		b.Fatal(err)
	}
	run := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.BuildRanked(ranked, core.Options{Method: core.Hybrid, Parallelism: workers}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("serial", run(1))
	b.Run("parallel", run(runtime.GOMAXPROCS(0)))
}

// BenchmarkParallelBuild measures the parallel in-memory builder against
// the serial one (extension; identical output).
func BenchmarkParallelBuild(b *testing.B) {
	g := mustDataset(b, "skitter")
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Build(g, core.Options{Method: core.Hybrid, Parallelism: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
