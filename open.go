package hopdb

import (
	"fmt"
	"net/http"
	"sync"

	"repro/client"
	"repro/internal/diskidx"
	"repro/internal/dynamic"
)

// OpenOption configures Open; see WithMmap, WithDisk, WithGraph,
// WithBitParallel, WithRemote, and WithHTTPClient.
type OpenOption func(*openConfig)

type openConfig struct {
	mmap      bool
	disk      bool
	diskOpt   DiskOptions
	graph     *Graph
	bp        bool
	bpRoots   int
	remotes   []string
	httpc     *http.Client
	dataset   string
	token     string
	updates   bool
	updateOpt UpdateOptions
	compact   bool
}

// WithMmap memory-maps the index file (v2 flat format) instead of
// reading it into memory: loading is O(1) allocations and the OS pages
// labels on demand. The backend kind is BackendMmap.
func WithMmap() OpenOption {
	return func(c *openConfig) { c.mmap = true }
}

// WithDisk opens the block-addressable disk-query format written by
// Index.SaveDiskIndex (hopdb-build -disk): labels stay on disk and each
// query reads only the two blocks it needs. The backend kind is
// BackendDisk. Disk backends answer distances only; combining WithDisk
// with WithGraph or WithBitParallel is an error.
func WithDisk(opt DiskOptions) OpenOption {
	return func(c *openConfig) { c.disk = true; c.diskOpt = opt }
}

// WithCompactKernel packs the labels into the branch-free compact query
// kernel after loading (EnableCompact), failing Open when the labels are
// not encodable (a distance beyond 8 bits or more than ~16.7M vertices).
// Heap-backed opens enable the kernel automatically when encodable, so
// the option exists for two reasons: to make encodability a hard
// requirement rather than a silent fallback, and to opt an mmap-backed
// index in (the packed keys are heap arrays, so by default WithMmap
// keeps the zero-copy scalar kernel). Incompatible with WithDisk,
// WithRemote(s), and WithUpdates, which never query through the in-
// process kernels.
func WithCompactKernel() OpenOption {
	return func(c *openConfig) { c.compact = true }
}

// WithGraph attaches the original graph to the opened index, enabling
// shortest-path reconstruction (Pather) and WithBitParallel.
func WithGraph(g *Graph) OpenOption {
	return func(c *openConfig) { c.graph = g }
}

// WithBitParallel folds the top-ranked hub labels into bit-parallel
// tuples after loading (paper Section 6). Requires WithGraph; only
// undirected unweighted indexes qualify. roots <= 0 selects the paper's
// default of 50.
func WithBitParallel(roots int) OpenOption {
	return func(c *openConfig) { c.bp = true; c.bpRoots = roots }
}

// WithRemote queries a hopdb-serve instance at url (e.g.
// "http://idx.internal:8080") over its versioned /v1 HTTP API instead of
// opening a local file: Open's path must be empty. The backend kind is
// BackendRemote. The returned Querier is a *client.Client (package
// repro/client), which also implements Pather when the server has a
// graph attached.
func WithRemote(url string) OpenOption {
	return WithRemotes(url)
}

// WithRemotes is WithRemote over a replica fleet: the returned Querier
// prefers one endpoint at a time and fails over to the next on transient
// errors (connection failures, 502/503/504), with capped exponential
// backoff and jitter between attempts. All endpoints must serve the same
// index — hopdb-serve replicas converged through the replication log, or
// hopdb-router instances in front of them.
func WithRemotes(urls ...string) OpenOption {
	return func(c *openConfig) { c.remotes = urls }
}

// WithHTTPClient sets the http.Client a WithRemote backend uses (for
// custom timeouts, transports, or middleware). Ignored for local
// backends.
func WithHTTPClient(hc *http.Client) OpenOption {
	return func(c *openConfig) { c.httpc = hc }
}

// WithDataset selects a named dataset on a multi-tenant hopdb-serve (or
// hopdb-router): queries go to /v1/{name}/* instead of the flat /v1/*
// routes, which serve the dataset named "default". Requires
// WithRemote(s).
func WithDataset(name string) OpenOption {
	return func(c *openConfig) { c.dataset = name }
}

// WithToken sends token as "Authorization: Bearer ..." on every request
// a WithRemote backend makes, for servers running with a token file or
// admin token. Requires WithRemote(s).
func WithToken(token string) OpenOption {
	return func(c *openConfig) { c.token = token }
}

// WithUpdates opens the index for online edge updates: the returned
// Querier also implements Updatable (InsertEdge/DeleteEdge patch the
// labels in place and publish a fresh immutable epoch, so concurrent
// readers never block). Requires WithGraph — maintenance walks the
// adjacency — and the labels are read into heap memory: combining
// WithUpdates with WithMmap, WithDisk, WithRemote, or WithBitParallel is
// an error (those backends serve read-only label images). The backend
// kind is BackendDynamic.
func WithUpdates(opt UpdateOptions) OpenOption {
	return func(c *openConfig) { c.updates = true; c.updateOpt = opt }
}

// Open is the single entry point for opening a saved index for querying,
// whatever regime it should serve from:
//
//	q, err := hopdb.Open("graph.idx")                          // heap
//	q, err := hopdb.Open("graph.idx", hopdb.WithMmap())        // mmap, zero-copy
//	q, err := hopdb.Open("graph.didx", hopdb.WithDisk(hopdb.DiskOptions{}))
//	q, err := hopdb.Open("", hopdb.WithRemote("http://host:8080"))
//
// All backends answer identical distances through the Querier contract;
// they differ only in where the labels live. Close the returned Querier
// when done. It replaces the LoadIndex / LoadIndexFlat / OpenDiskIndex
// trio, which remain as deprecated wrappers.
func Open(path string, opts ...OpenOption) (Querier, error) {
	var cfg openConfig
	for _, o := range opts {
		o(&cfg)
	}
	if len(cfg.remotes) > 0 {
		if path != "" {
			return nil, fmt.Errorf("hopdb: Open: path must be empty with WithRemote(s), got %q", path)
		}
		if cfg.mmap || cfg.disk || cfg.graph != nil || cfg.bp || cfg.updates || cfg.compact {
			return nil, fmt.Errorf("hopdb: Open: WithRemote(s) cannot be combined with local-backend options")
		}
		return client.NewMulti(cfg.remotes, client.Options{
			HTTPClient: cfg.httpc,
			Dataset:    cfg.dataset,
			Token:      cfg.token,
		})
	}
	if cfg.dataset != "" || cfg.token != "" {
		return nil, fmt.Errorf("hopdb: Open: WithDataset/WithToken apply only to WithRemote(s) backends")
	}
	if cfg.updates {
		if cfg.mmap || cfg.disk {
			return nil, fmt.Errorf("hopdb: Open: WithUpdates needs heap labels; it cannot be combined with WithMmap or WithDisk")
		}
		if cfg.compact {
			return nil, fmt.Errorf("hopdb: Open: WithUpdates cannot be combined with WithCompactKernel (updates republish label epochs that the packed image would shadow)")
		}
		if cfg.bp {
			return nil, fmt.Errorf("hopdb: Open: WithUpdates cannot be combined with WithBitParallel (the bit-parallel image would go stale)")
		}
		if cfg.graph == nil {
			return nil, fmt.Errorf("hopdb: Open: WithUpdates requires WithGraph (maintenance walks the adjacency)")
		}
		idx, err := loadIndex(path)
		if err != nil {
			return nil, err
		}
		dopt := dynamic.Options{
			MaxStaleFraction:   cfg.updateOpt.MaxStaleFraction,
			RebuildParallelism: cfg.updateOpt.RebuildParallelism,
			JournalLimit:       cfg.updateOpt.JournalLimit,
			InitialSeq:         cfg.updateOpt.InitialSeq,
		}
		if cfg.updateOpt.Rebuild != nil {
			// Staleness-triggered full rebuilds replay the original build
			// configuration instead of zero-value defaults.
			dopt.Build = coreOptions(*cfg.updateOpt.Rebuild)
		}
		dyn, err := dynamic.New(idx.flat, cfg.graph, dopt)
		if err != nil {
			return nil, err
		}
		return &dynQuerier{d: dyn}, nil
	}
	if cfg.disk {
		if cfg.mmap {
			return nil, fmt.Errorf("hopdb: Open: WithDisk and WithMmap are mutually exclusive")
		}
		if cfg.graph != nil || cfg.bp || cfg.compact {
			return nil, fmt.Errorf("hopdb: Open: the disk backend answers distances only; WithGraph/WithBitParallel/WithCompactKernel need an in-memory index")
		}
		d, err := diskidx.Open(path, cfg.diskOpt)
		if err != nil {
			return nil, err
		}
		return &diskQuerier{d: d}, nil
	}
	var (
		idx *Index
		err error
	)
	if cfg.mmap {
		idx, err = loadIndexFlat(path)
	} else {
		idx, err = loadIndex(path)
	}
	if err != nil {
		return nil, err
	}
	if cfg.graph != nil {
		idx.AttachGraph(cfg.graph)
	}
	if cfg.compact {
		// Explicit opt-in: encodability is a requirement, not a hint.
		if err := idx.EnableCompact(); err != nil {
			idx.Close()
			return nil, err
		}
	} else if !cfg.mmap {
		// Heap-backed opens get the packed kernel automatically when the
		// labels are encodable; otherwise queries stay on the scalar
		// kernel with identical answers. Mmap stays scalar by default:
		// the packed keys are heap arrays, which would defeat the
		// O(1)-allocation point of mapping the file.
		_ = idx.EnableCompact()
	}
	if cfg.bp {
		if err := idx.EnableBitParallel(cfg.bpRoots); err != nil {
			idx.Close()
			return nil, err
		}
	}
	return idx, nil
}

// diskQuerier adapts a DiskIndex to the Querier contract. The Querier
// methods report reachability, not errors, so there a read error answers
// (Infinity, false); callers that care use the error-reporting Lookup /
// LookupBatchInto extension (as the server does) or the DiskIndex
// directly (see Disk).
type diskQuerier struct {
	d *diskidx.DiskIndex
}

func (q *diskQuerier) Distance(s, t int32) (uint32, bool) {
	d, ok, _ := q.Lookup(s, t)
	return d, ok
}

// Lookup implements Lookuper, surfacing disk read errors.
func (q *diskQuerier) Lookup(s, t int32) (uint32, bool, error) {
	d, err := q.d.Distance(s, t)
	if err != nil {
		return Infinity, false, err
	}
	return d, d != Infinity, nil
}

func (q *diskQuerier) DistanceBatchInto(results []uint32, pairs []QueryPair, workers int) []uint32 {
	out, _ := q.LookupBatchInto(results, pairs, workers)
	return out
}

// LookupBatchInto implements LookupBatcher: the batch is sharded across
// workers, each reusing one scratch (read + decode buffers) for its
// whole chunk, and the first disk read error is reported (errored pairs
// answer Infinity in results).
func (q *diskQuerier) LookupBatchInto(results []uint32, pairs []QueryPair, workers int) ([]uint32, error) {
	var (
		errOnce  sync.Once
		firstErr error
	)
	out := batchInto(results, pairs, workers, func(pairs []QueryPair, results []uint32) {
		var sc diskidx.Scratch
		for i, p := range pairs {
			d, err := q.d.DistanceScratch(p.S, p.T, &sc)
			if err != nil {
				errOnce.Do(func() { firstErr = err })
				d = Infinity
			}
			results[i] = d
		}
	})
	return out, firstErr
}

func (q *diskQuerier) N() int32 { return q.d.N() }

func (q *diskQuerier) Stats() QuerierStats {
	return QuerierStats{
		Backend:   BackendDisk,
		Kernel:    KernelScalar,
		Directed:  q.d.Directed(),
		Vertices:  q.d.N(),
		Entries:   q.d.Entries(),
		SizeBytes: q.d.SizeBytes(),
	}
}

func (q *diskQuerier) Close() error { return q.d.Close() }

// Disk exposes the underlying DiskIndex (I/O accounting, error-reporting
// queries) of a Querier opened with WithDisk, or nil for other backends.
func Disk(q Querier) *DiskIndex {
	if dq, ok := q.(*diskQuerier); ok {
		return dq.d
	}
	return nil
}
